"""Tests for the RBD substrate: structure, builders, evaluators, bounds."""

import math

import numpy as np
import pytest

from repro.core import Interval, Mapping, Platform, TaskChain, random_chain
from repro.core.evaluation import mapping_log_reliability
from repro.rbd import (
    RBD,
    cut_set_lower_bound,
    estimate_log_reliability,
    exact_log_reliability_enumeration,
    exact_log_reliability_factoring,
    minimal_cut_sets,
    minimal_path_sets,
    path_set_upper_bound,
    rbd_with_routing,
    rbd_without_routing,
    series_parallel_log_reliability,
)
from repro.rbd.diagram import DEST, SOURCE
from repro.rbd.seriesparallel import NotSeriesParallel
from repro.util import logrel


def series_rbd(ells):
    rbd = RBD()
    prev = SOURCE
    for i, ell in enumerate(ells):
        rbd.add_block(i, ell)
        rbd.add_edge(prev, i)
        prev = i
    rbd.add_edge(prev, DEST)
    return rbd


def parallel_rbd(ells):
    rbd = RBD()
    for i, ell in enumerate(ells):
        rbd.add_block(i, ell)
        rbd.add_edge(SOURCE, i)
        rbd.add_edge(i, DEST)
    return rbd


def bridge_rbd():
    """The classic non-SP bridge network with 5 blocks."""
    rbd = RBD()
    for name, ell in zip("abcde", (-0.1, -0.2, -0.3, -0.4, -0.5)):
        rbd.add_block(name, ell)
    rbd.add_edge(SOURCE, "a")
    rbd.add_edge(SOURCE, "b")
    rbd.add_edge("a", "c")
    rbd.add_edge("b", "c")  # c is the bridge
    rbd.add_edge("a", "d")
    rbd.add_edge("c", "d")
    rbd.add_edge("c", "e")
    rbd.add_edge("b", "e")
    rbd.add_edge("d", DEST)
    rbd.add_edge("e", DEST)
    return rbd


@pytest.fixture
def small_mapping():
    chain = TaskChain([4.0, 6.0], [2.0, 0.0])
    plat = Platform(
        speeds=[1.0, 2.0, 1.5, 1.0],
        failure_rates=[1e-2, 2e-2, 5e-3, 1e-2],
        bandwidth=1.0,
        link_failure_rate=1e-2,
        max_replication=2,
    )
    return Mapping(
        chain, plat, [(Interval(0, 1), (0, 1)), (Interval(1, 2), (2, 3))]
    )


class TestDiagramStructure:
    def test_reserved_names(self):
        rbd = RBD()
        with pytest.raises(ValueError, match="reserved"):
            rbd.add_block(SOURCE, -0.1)

    def test_duplicate_block(self):
        rbd = RBD()
        rbd.add_block("x", -0.1)
        with pytest.raises(ValueError, match="already"):
            rbd.add_block("x", -0.2)

    def test_edge_requires_existing_nodes(self):
        rbd = RBD()
        with pytest.raises(ValueError, match="unknown"):
            rbd.add_edge(SOURCE, "ghost")

    def test_cycle_rejected(self):
        rbd = RBD()
        rbd.add_block("a", -0.1)
        rbd.add_block("b", -0.1)
        rbd.add_edge("a", "b")
        with pytest.raises(ValueError, match="cycle"):
            rbd.add_edge("b", "a")

    def test_self_loop_rejected(self):
        rbd = RBD()
        rbd.add_block("a", -0.1)
        with pytest.raises(ValueError, match="self-loop"):
            rbd.add_edge("a", "a")

    def test_validate_requires_path(self):
        rbd = RBD()
        rbd.add_block("a", -0.1)
        rbd.add_edge(SOURCE, "a")
        with pytest.raises(ValueError, match="no path"):
            rbd.validate()

    def test_validate_rejects_dangling_block(self):
        rbd = series_rbd([-0.1])
        rbd.add_block("dangling", -0.5)
        rbd.add_edge(SOURCE, "dangling")
        with pytest.raises(ValueError, match="no S->D path"):
            rbd.validate()

    def test_operational_semantics(self):
        rbd = parallel_rbd([-0.1, -0.2])
        assert rbd.operational({0})
        assert rbd.operational({1})
        assert not rbd.operational(set())

    def test_block_properties(self):
        rbd = RBD()
        rbd.add_block("x", math.log(0.75))
        assert rbd.block("x").reliability == pytest.approx(0.75)
        assert rbd.block("x").failure == pytest.approx(0.25)


class TestExactEvaluators:
    def test_series_closed_form(self):
        ells = [-0.1, -0.2, -0.3]
        rbd = series_rbd(ells)
        want = sum(ells)
        assert exact_log_reliability_enumeration(rbd) == pytest.approx(want, rel=1e-12)
        assert exact_log_reliability_factoring(rbd) == pytest.approx(want, rel=1e-12)
        assert series_parallel_log_reliability(rbd) == pytest.approx(want, rel=1e-12)

    def test_parallel_closed_form(self):
        ells = [-0.5, -1.0, -2.0]
        rbd = parallel_rbd(ells)
        want = logrel.parallel(ells)
        assert exact_log_reliability_enumeration(rbd) == pytest.approx(want, rel=1e-12)
        assert exact_log_reliability_factoring(rbd) == pytest.approx(want, rel=1e-12)
        assert series_parallel_log_reliability(rbd) == pytest.approx(want, rel=1e-12)

    def test_bridge_factoring_matches_enumeration(self):
        rbd = bridge_rbd()
        a = exact_log_reliability_enumeration(rbd)
        b = exact_log_reliability_factoring(rbd)
        assert a == pytest.approx(b, rel=1e-10)

    def test_bridge_closed_form(self):
        # Known closed form by conditioning on the bridge block c.
        rbd = bridge_rbd()
        ra, rb, rc, rd, re = (math.exp(-x) for x in (0.1, 0.2, 0.3, 0.4, 0.5))
        # c up: (a|b) in series with (d|e): paths a-d, a-e?? careful:
        # with c up the network is (a OR b) -> (d OR e)? Not quite: path
        # a->d exists directly; b->e directly; through c: a->c->e, b->c->d.
        # With c up, reachable: works iff (a and d) or (b and e) or
        # (a and e) or (b and d) = (a or b) and (d or e).
        p_up = (1 - (1 - ra) * (1 - rb)) * (1 - (1 - rd) * (1 - re))
        # c down: only direct pairs.
        p_down = 1 - (1 - ra * rd) * (1 - rb * re)
        want = math.log(rc * p_up + (1 - rc) * p_down)
        assert exact_log_reliability_factoring(rbd) == pytest.approx(want, rel=1e-12)

    def test_bridge_not_series_parallel(self):
        with pytest.raises(NotSeriesParallel):
            series_parallel_log_reliability(bridge_rbd())

    def test_enumeration_cap(self):
        rbd = series_rbd([-0.1] * 23)
        with pytest.raises(ValueError, match="cap"):
            exact_log_reliability_enumeration(rbd)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_dags_agree(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 9))
        rbd = RBD()
        for i in range(n):
            rbd.add_block(i, float(-rng.uniform(0.01, 2.0)))
        # Random layered DAG: S -> layer edges -> D.
        for i in range(n):
            if rng.random() < 0.4 or i == 0:
                rbd.add_edge(SOURCE, i)
            for j in range(i + 1, n):
                if rng.random() < 0.35:
                    rbd.add_edge(i, j)
            if rng.random() < 0.4 or i == n - 1:
                rbd.add_edge(i, DEST)
        a = exact_log_reliability_enumeration(rbd)
        b = exact_log_reliability_factoring(rbd)
        if a == -math.inf:
            assert b == -math.inf
        else:
            assert b == pytest.approx(a, rel=1e-9)


class TestPathAndCutSets:
    def test_series_structure(self):
        rbd = series_rbd([-0.1, -0.2])
        assert minimal_path_sets(rbd) == [frozenset({0, 1})]
        cuts = minimal_cut_sets(rbd)
        assert sorted(cuts, key=str) == [frozenset({0}), frozenset({1})]

    def test_parallel_structure(self):
        rbd = parallel_rbd([-0.1, -0.2])
        assert sorted(minimal_path_sets(rbd), key=str) == [
            frozenset({0}),
            frozenset({1}),
        ]
        assert minimal_cut_sets(rbd) == [frozenset({0, 1})]

    def test_bridge_cut_sets(self):
        # Classic: {a,b}, {d,e}, {a,c,e}, {b,c,d}.
        cuts = set(minimal_cut_sets(bridge_rbd()))
        assert cuts == {
            frozenset("ab"),
            frozenset("de"),
            frozenset("ace"),
            frozenset("bcd"),
        }

    def test_bridge_path_sets(self):
        paths = set(minimal_path_sets(bridge_rbd()))
        assert paths == {
            frozenset("ad"),
            frozenset("be"),
            frozenset("ace"),
            frozenset("bcd"),
        }

    @pytest.mark.parametrize("seed", range(6))
    def test_fkg_bounds_sandwich_exact(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(3, 8))
        rbd = RBD()
        for i in range(n):
            rbd.add_block(i, float(-rng.uniform(0.05, 1.5)))
        for i in range(n):
            if rng.random() < 0.5 or i == 0:
                rbd.add_edge(SOURCE, i)
            for j in range(i + 1, n):
                if rng.random() < 0.3:
                    rbd.add_edge(i, j)
            if rng.random() < 0.5 or i == n - 1:
                rbd.add_edge(i, DEST)
        exact = exact_log_reliability_enumeration(rbd)
        if exact == -math.inf:
            return
        lo = cut_set_lower_bound(rbd)
        hi = path_set_upper_bound(rbd)
        assert lo <= exact + 1e-12
        assert hi >= exact - 1e-12

    def test_cut_bound_exact_on_series(self):
        rbd = series_rbd([-0.3, -0.4])
        assert cut_set_lower_bound(rbd) == pytest.approx(-0.7, rel=1e-12)

    def test_path_bound_exact_on_parallel(self):
        rbd = parallel_rbd([-0.3, -0.4])
        assert path_set_upper_bound(rbd) == pytest.approx(
            logrel.parallel([-0.3, -0.4]), rel=1e-12
        )


class TestMappingBuilders:
    def test_routed_rbd_matches_eq9(self, small_mapping):
        rbd = rbd_with_routing(small_mapping)
        got = series_parallel_log_reliability(rbd)
        want = mapping_log_reliability(small_mapping)
        assert got == pytest.approx(want, rel=1e-12)

    def test_routed_rbd_exact_evaluators_agree(self, small_mapping):
        rbd = rbd_with_routing(small_mapping)
        want = mapping_log_reliability(small_mapping)
        assert exact_log_reliability_enumeration(rbd) == pytest.approx(want, rel=1e-10)
        assert exact_log_reliability_factoring(rbd) == pytest.approx(want, rel=1e-10)

    def test_unrouted_rbd_is_not_sp_with_replication(self, small_mapping):
        rbd = rbd_without_routing(small_mapping)
        with pytest.raises(NotSeriesParallel):
            series_parallel_log_reliability(rbd)

    def test_unrouted_rbd_block_count(self, small_mapping):
        # 2 + 2 interval blocks + 2*2 comm blocks (one boundary).
        rbd = rbd_without_routing(small_mapping)
        assert rbd.n_blocks == 8

    def test_routed_block_count(self, small_mapping):
        # 4 interval blocks + 2 comm-out + 1 router + 2 comm-in = 9.
        rbd = rbd_with_routing(small_mapping)
        assert rbd.n_blocks == 9

    def test_unrouted_at_least_as_reliable_as_routed(self, small_mapping):
        """Routing funnels all traffic through one router path; removing
        it can only add redundancy (every routed path maps to an
        unrouted one)."""
        routed = mapping_log_reliability(small_mapping)
        unrouted = exact_log_reliability_factoring(
            rbd_without_routing(small_mapping)
        )
        assert unrouted >= routed - 1e-15

    def test_single_interval_no_router(self):
        chain = TaskChain([4.0], [0.0])
        plat = Platform([1.0, 1.0], [1e-2, 1e-2], max_replication=2)
        m = Mapping(chain, plat, [(Interval(0, 1), (0, 1))])
        routed = rbd_with_routing(m)
        unrouted = rbd_without_routing(m)
        assert routed.n_blocks == 2 == unrouted.n_blocks
        want = mapping_log_reliability(m)
        assert series_parallel_log_reliability(routed) == pytest.approx(want, rel=1e-12)
        assert exact_log_reliability_factoring(unrouted) == pytest.approx(want, rel=1e-12)

    def test_unreliable_router_hurts(self, small_mapping):
        perfect = series_parallel_log_reliability(rbd_with_routing(small_mapping))
        lossy = series_parallel_log_reliability(
            rbd_with_routing(small_mapping, routing_log_reliability=-0.1)
        )
        assert lossy == pytest.approx(perfect - 0.1, rel=1e-9)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_mappings_sp_equals_eq9(self, seed):
        rng = np.random.default_rng(200 + seed)
        n = int(rng.integers(2, 5))
        chain = random_chain(n, rng)
        p = int(rng.integers(2, 6))
        plat = Platform(
            speeds=rng.uniform(1, 10, p),
            failure_rates=rng.uniform(1e-4, 1e-2, p),
            bandwidth=2.0,
            link_failure_rate=1e-3,
            max_replication=2,
        )
        # Random 2-interval mapping when possible.
        if n >= 2 and p >= 2:
            cut = int(rng.integers(1, n))
            procs = rng.permutation(p)
            k1 = int(rng.integers(1, min(2, p - 1) + 1))
            mapping = Mapping(
                chain,
                plat,
                [
                    (Interval(0, cut), tuple(int(x) for x in procs[:k1])),
                    (Interval(cut, n), (int(procs[k1]),)),
                ],
            )
            rbd = rbd_with_routing(mapping)
            assert series_parallel_log_reliability(rbd) == pytest.approx(
                mapping_log_reliability(mapping), rel=1e-10
            )


class TestMonteCarlo:
    def test_estimates_series(self):
        rbd = series_rbd([math.log(0.9), math.log(0.8)])
        est = estimate_log_reliability(rbd, trials=40_000, rng=0)
        assert est.consistent_with(math.log(0.72))

    def test_estimates_bridge(self):
        rbd = bridge_rbd()
        exact = exact_log_reliability_factoring(rbd)
        est = estimate_log_reliability(rbd, trials=40_000, rng=1)
        assert est.consistent_with(exact)

    def test_wilson_interval_sane(self):
        from repro.rbd.montecarlo import wilson_interval

        lo, hi = wilson_interval(90, 100)
        assert 0.8 < lo < 0.9 < hi < 0.97
        with pytest.raises(ValueError):
            wilson_interval(1, 0)

    def test_wilson_interval_boundary_endpoints_exact(self):
        """All-successes must cover a true proportion of exactly 1.0
        (float rounding used to land the upper bound at 1 - 1ulp and
        spuriously flag near-certain reliabilities as outliers)."""
        from repro.rbd.montecarlo import wilson_interval

        lo, hi = wilson_interval(1500, 1500)
        assert hi == 1.0 and lo < 1.0
        lo, hi = wilson_interval(0, 1500)
        assert lo == 0.0 and hi > 0.0

    def test_no_blocks_direct_edge(self):
        rbd = RBD()
        rbd.graph.add_edge(SOURCE, DEST)
        est = estimate_log_reliability(rbd, trials=10, rng=2)
        assert est.reliability == 1.0

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            estimate_log_reliability(series_rbd([-0.1]), trials=0)
