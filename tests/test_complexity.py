"""Tests for the NP-completeness machinery: source-problem solvers and
end-to-end checks of the Theorem 3 / Theorem 5 reductions."""


import numpy as np
import pytest

from repro.algorithms import brute_force_best, pareto_dp_best
from repro.complexity import (
    build_theorem3_instance,
    build_theorem5_instance,
    n_way_partition_solve,
    random_instance,
    random_yes_instance,
    two_partition_solve,
)


class TestTwoPartitionSolver:
    def test_solvable(self):
        sol = two_partition_solve([1, 2, 3])
        assert sol == [2] or sorted(sol) == [0, 1]

    def test_unsolvable_even_total(self):
        assert two_partition_solve([1, 2, 5]) is None  # total 8, no subset = 4

    def test_odd_total(self):
        assert two_partition_solve([1, 1, 1]) is None

    def test_empty(self):
        assert two_partition_solve([]) == []

    def test_subset_sums_to_half(self):
        vals = [3, 1, 1, 2, 2, 1]
        sol = two_partition_solve(vals)
        assert sol is not None
        assert sum(vals[i] for i in sol) == sum(vals) // 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            two_partition_solve([1, 0])

    @pytest.mark.parametrize("seed", range(5))
    def test_yes_instances_are_yes(self, seed):
        vals = random_yes_instance(6, rng=seed)
        sol = two_partition_solve(vals)
        assert sol is not None
        assert sum(vals[i] for i in sol) * 2 == sum(vals)

    def test_random_instance_shape(self):
        vals = random_instance(5, rng=0)
        assert len(vals) == 5 and all(v >= 1 for v in vals)

    def test_brute_force_agreement(self):
        import itertools

        rng = np.random.default_rng(3)
        for _ in range(20):
            vals = [int(v) for v in rng.integers(1, 12, size=6)]
            dp = two_partition_solve(vals)
            total = sum(vals)
            brute = total % 2 == 0 and any(
                sum(c) * 2 == total
                for r in range(len(vals) + 1)
                for c in itertools.combinations(vals, r)
            )
            assert (dp is not None) == brute


class TestNWayPartitionSolver:
    def test_simple_yes(self):
        groups = n_way_partition_solve([1, 2, 3, 4, 5, 9], 2)
        assert groups is not None
        sums = [sum([1, 2, 3, 4, 5, 9][i] for i in g) for g in groups]
        assert sums == [12, 12]
        assert sorted(i for g in groups for i in g) == list(range(6))

    def test_simple_no(self):
        assert n_way_partition_solve([1, 1, 1, 5], 2) is None

    def test_indivisible_total(self):
        assert n_way_partition_solve([1, 1, 1], 2) is None

    def test_oversized_value(self):
        assert n_way_partition_solve([7, 1, 1, 1], 2) is None  # 7 > 5

    def test_three_groups(self):
        vals = [4, 4, 4, 2, 2, 2, 3, 3, 3]  # T = 9
        groups = n_way_partition_solve(vals, 3)
        assert groups is not None
        assert all(sum(vals[i] for i in g) == 9 for g in groups)

    def test_validation(self):
        with pytest.raises(ValueError):
            n_way_partition_solve([1], 0)
        with pytest.raises(ValueError):
            n_way_partition_solve([-1, 1], 1)


class TestTheorem3Reduction:
    """End-to-end: A has a half-sum subset iff the built homogeneous
    instance admits a mapping with r >= threshold and L <= bound."""

    def solve_reduction(self, a):
        inst = build_theorem3_instance(a)
        res = pareto_dp_best(
            inst.chain, inst.platform, max_latency=inst.max_latency
        )
        assert res.feasible  # latency alone is always satisfiable here
        return res.log_reliability >= inst.min_log_reliability, inst

    def test_yes_instance(self):
        ok, _ = self.solve_reduction([1, 2, 3])  # {1,2} vs {3}
        assert ok

    def test_no_instance(self):
        ok, _ = self.solve_reduction([1, 2, 5])  # total 8, no subset of 4
        assert not ok

    def test_another_yes(self):
        ok, _ = self.solve_reduction([2, 2])  # {2} vs {2}
        assert ok

    def test_another_no(self):
        ok, _ = self.solve_reduction([1, 1, 4])  # total 6, need 3: impossible
        assert not ok

    @pytest.mark.parametrize("seed", range(3))
    def test_randomized_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        a = [int(v) for v in rng.integers(1, 5, size=3)]
        if sum(a) % 2:
            a[0] += 1
        expected = two_partition_solve(a) is not None
        got, _ = self.solve_reduction(a)
        assert got == expected

    def test_construction_shape(self):
        inst = build_theorem3_instance([1, 2, 3])
        n = 3
        assert inst.chain.n == 3 * n + 1
        assert inst.platform.p == 6 * n
        assert inst.platform.max_replication == 2
        assert inst.platform.homogeneous
        assert inst.T == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            build_theorem3_instance([])
        with pytest.raises(ValueError):
            build_theorem3_instance([1, 2])  # odd total
        with pytest.raises(ValueError):
            build_theorem3_instance([0, 2])


class TestTheorem5Reduction:
    """End-to-end: the 3n numbers split into n equal-sum groups iff the
    heterogeneous instance reaches the reliability threshold."""

    def solve_reduction(self, a):
        inst = build_theorem5_instance(a)
        res = brute_force_best(inst.chain, inst.platform, budget=10_000_000)
        assert res.feasible
        return res.log_reliability >= inst.min_log_reliability, inst

    def test_yes_instance(self):
        # n = 2, T = 6: {4,1,1} {2,2,2} -> both 6.
        ok, _ = self.solve_reduction([4, 1, 1, 2, 2, 2])
        assert ok

    def test_no_instance(self):
        # n = 2, total 12, T = 6 but one value is 7 > 6: unbalanced.
        ok, _ = self.solve_reduction([7, 1, 1, 1, 1, 1])
        assert not ok

    def test_equivalence_matches_solver(self):
        for a in ([4, 1, 1, 2, 2, 2], [7, 1, 1, 1, 1, 1], [3, 3, 2, 2, 1, 1]):
            expected = n_way_partition_solve(a, len(a) // 3) is not None
            got, _ = self.solve_reduction(a)
            assert got == expected, a

    def test_construction_shape(self):
        inst = build_theorem5_instance([4, 1, 1, 2, 2, 2])
        assert inst.chain.n == 2
        assert inst.platform.p == 6
        assert inst.platform.max_replication == 3
        assert not inst.platform.homogeneous
        assert inst.gamma == pytest.approx(1 + 1 / (2 * (6 - 1)))

    def test_validation(self):
        with pytest.raises(ValueError):
            build_theorem5_instance([1, 2])  # not 3n values
        with pytest.raises(ValueError):
            build_theorem5_instance([1, 1, 1, 1, 1, 2])  # sum not divisible
