"""Tests for the Section 8 experiment harness (instances, methods,
sweeps, figures, reporting)."""

import json

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    FIGURES,
    get_method,
    heterogeneous_suite,
    homogeneous_suite,
    render_series_table,
    run_experiment,
    run_figure,
    run_sweep,
    series_to_json,
)
from repro.experiments.report import render_figure

SMALL = dict(n_instances=4, grid="reduced", seed=7)


class TestInstances:
    def test_homogeneous_suite_shape(self):
        suite = homogeneous_suite(n_instances=5, seed=1)
        assert len(suite) == 5
        chain, plat = suite[0]
        assert chain.n == 15
        assert plat.p == 10
        assert plat.homogeneous
        assert plat.max_replication == 3
        assert float(plat.failure_rates[0]) == 1e-8
        assert plat.link_failure_rate == 1e-5

    def test_section8_cost_ranges(self):
        for chain, _ in homogeneous_suite(n_instances=10, seed=2):
            assert np.all((chain.work >= 1) & (chain.work <= 100))
            assert np.all(chain.output[:-1] >= 1) and np.all(chain.output[:-1] <= 10)
            assert chain.output[-1] == 0.0

    def test_reproducible(self):
        a = homogeneous_suite(n_instances=3, seed=9)
        b = homogeneous_suite(n_instances=3, seed=9)
        assert all(ca == cb for (ca, _), (cb, _) in zip(a, b))

    def test_prefix_stability(self):
        """Extending the suite must not change earlier instances."""
        small = homogeneous_suite(n_instances=3, seed=4)
        big = homogeneous_suite(n_instances=6, seed=4)
        assert all(cs == cb for (cs, _), (cb, _) in zip(small, big))

    def test_heterogeneous_suite(self):
        pairs = heterogeneous_suite(n_instances=4, seed=3)
        assert len(pairs) == 4
        for pair in pairs:
            assert not pair.het_platform.homogeneous
            assert pair.hom_platform.homogeneous
            assert float(pair.hom_platform.speeds[0]) == 5.0
            assert np.all(
                (pair.het_platform.speeds >= 1) & (pair.het_platform.speeds <= 100)
            )
            # Same chain against both platforms.
            assert pair.chain.n == 15

    def test_heterogeneous_pair_invariants(self):
        """Section 8.2's pairing contract: the homogeneous counterpart
        re-runs the *exact same chain* on a constant speed-5 platform
        with the same lambda_u = 1e-8 everywhere."""
        pairs = heterogeneous_suite(n_instances=5, seed=17)
        for pair in pairs:
            # One chain serves both platforms, and it follows the same
            # Section 8 cost distributions as the homogeneous suite.
            assert set(pair.__dataclass_fields__) == {
                "chain", "het_platform", "hom_platform"
            }
            assert np.all((pair.chain.work >= 1) & (pair.chain.work <= 100))
            assert np.all(pair.chain.output[:-1] <= 10) and pair.chain.output[-1] == 0.0
            # Constant speed 5 across the whole counterpart platform.
            assert np.all(pair.hom_platform.speeds == 5.0)
            # lambda_u stays 1e-8 on BOTH platforms (speed is the only
            # source of heterogeneity in Section 8.2).
            assert np.all(pair.het_platform.failure_rates == 1e-8)
            assert np.all(pair.hom_platform.failure_rates == 1e-8)
            # The pair shares every remaining platform parameter.
            for plat in (pair.het_platform, pair.hom_platform):
                assert plat.p == 10
                assert plat.bandwidth == 1.0
                assert plat.link_failure_rate == 1e-5
                assert plat.max_replication == 3

    def test_heterogeneous_counterpart_shared_across_pairs(self):
        """One speed-5 platform serves the whole suite (equal for all
        pairs), so truncating the suite never changes it."""
        pairs = heterogeneous_suite(n_instances=3, seed=8)
        assert all(p.hom_platform == pairs[0].hom_platform for p in pairs)
        longer = heterogeneous_suite(n_instances=5, seed=8)
        assert longer[0].hom_platform == pairs[0].hom_platform
        # And the chains it reuses are the het chains, element-wise.
        for short, long in zip(pairs, longer):
            assert short.chain == long.chain
            assert short.het_platform == long.het_platform


class TestMethods:
    def test_registry(self):
        assert get_method("ilp").exact
        assert get_method("heur-l").homogeneous_only is False
        with pytest.raises(ValueError, match="unknown method"):
            get_method("simulated-annealing")

    def test_hom_only_method_rejects_het(self):
        pairs = heterogeneous_suite(n_instances=1, seed=0)
        inst = [(pairs[0].chain, pairs[0].het_platform)]
        with pytest.raises(ValueError, match="homogeneous"):
            run_sweep(inst, [get_method("ilp")], [(50.0, 100.0)])

    def test_paper_variants_registered(self):
        assert get_method("heur-l-paper").name == "heur-l-paper"
        assert get_method("heur-p-paper").name == "heur-p-paper"


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        instances = homogeneous_suite(n_instances=5, seed=11)
        methods = [get_method("pareto-dp"), get_method("heur-l"), get_method("heur-p")]
        bounds = [(100.0, 750.0), (200.0, 750.0), (400.0, 750.0)]
        return run_sweep(instances, methods, bounds)

    def test_counts_shape_and_range(self, sweep):
        counts = sweep.counts("pareto-dp")
        assert counts.shape == (3,)
        assert np.all((0 <= counts) & (counts <= 5))

    def test_exact_counts_dominate_heuristics(self, sweep):
        exact = sweep.counts("pareto-dp")
        assert np.all(exact >= sweep.counts("heur-l"))
        assert np.all(exact >= sweep.counts("heur-p"))

    def test_exact_counts_monotone_in_period(self, sweep):
        exact = sweep.counts("pareto-dp")
        assert np.all(np.diff(exact) >= 0)

    def test_common_rule_uses_shared_instances(self, sweep):
        # Wherever defined, failure averages are in (0, 1).
        for m in ("pareto-dp", "heur-l", "heur-p"):
            avg = sweep.average_failure(m, rule="common")
            finite = avg[~np.isnan(avg)]
            assert np.all((finite > 0) & (finite < 1))

    def test_exact_failure_never_worse_on_common_set(self, sweep):
        exact = sweep.average_failure("pareto-dp", rule="common")
        heur = sweep.average_failure("heur-l", rule="common")
        mask = ~np.isnan(exact) & ~np.isnan(heur)
        assert np.all(exact[mask] <= heur[mask] + 1e-18)

    def test_per_method_rule(self, sweep):
        avg = sweep.average_failure("heur-p", rule="per-method")
        assert avg.shape == (3,)

    def test_unknown_rule_and_method(self, sweep):
        with pytest.raises(ValueError, match="rule"):
            sweep.average_failure("heur-l", rule="median")
        with pytest.raises(ValueError, match="not in sweep"):
            sweep.counts("ilp")

    def test_validation(self):
        with pytest.raises(ValueError, match="instance"):
            run_sweep([], [get_method("heur-l")], [(1.0, 1.0)])
        inst = homogeneous_suite(n_instances=1, seed=0)
        with pytest.raises(ValueError, match="sweep point"):
            run_sweep(inst, [get_method("heur-l")], [])
        with pytest.raises(ValueError, match="align"):
            run_sweep(inst, [get_method("heur-l")], [(1.0, 1.0)], xs=[1.0, 2.0])


class TestFiguresRegistry:
    def test_all_ten_figures_mapped(self):
        assert set(FIGURES) == {f"fig{i}" for i in range(6, 16)}

    def test_pairs_share_experiments(self):
        for spec in EXPERIMENTS.values():
            assert FIGURES[spec.count_figure] == (spec.id, "count")
            assert FIGURES[spec.failure_figure] == (spec.id, "failure")

    def test_unknown_ids(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("hom-everything", **SMALL)
        with pytest.raises(ValueError, match="unknown figure"):
            run_figure("fig99", **SMALL)


class TestRunFigure:
    @pytest.fixture(scope="class")
    def hom_exp(self):
        return run_experiment("hom-period", exact_method="pareto-dp", **SMALL)

    @pytest.fixture(scope="class")
    def het_exp(self):
        return run_experiment("het-period", **SMALL)

    def test_count_figure_series(self, hom_exp):
        fig = run_figure("fig6", experiment_result=hom_exp)
        assert set(fig.series) == {"ilp", "heur-l", "heur-p"}
        for series in fig.series.values():
            assert series.shape == fig.xs.shape
            assert np.all((0 <= series) & (series <= 4))

    def test_failure_figure_series(self, hom_exp):
        fig = run_figure("fig7", experiment_result=hom_exp)
        assert fig.metric == "failure"
        for series in fig.series.values():
            finite = series[~np.isnan(series)]
            assert np.all((finite >= 0) & (finite <= 1))

    def test_het_figure_has_four_curves(self, het_exp):
        fig = run_figure("fig12", experiment_result=het_exp)
        assert set(fig.series) == {
            "heur-l_het",
            "heur-p_het",
            "heur-l_hom",
            "heur-p_hom",
        }

    def test_het_beats_hom_counterpart(self, het_exp):
        """The paper's headline Section 8.2 finding."""
        fig = run_figure("fig12", experiment_result=het_exp)
        assert fig.series["heur-p_het"].sum() >= fig.series["heur-p_hom"].sum()
        assert fig.series["heur-l_het"].sum() >= fig.series["heur-l_hom"].sum()

    def test_result_mismatch_rejected(self, hom_exp):
        with pytest.raises(ValueError, match="needs"):
            run_figure("fig12", experiment_result=hom_exp)

    def test_exact_method_label_normalized(self, hom_exp):
        # pareto-dp stands in for the ILP but keeps the paper's label.
        fig = run_figure("fig6", experiment_result=hom_exp)
        assert "ilp" in fig.series and "pareto-dp" not in fig.series

    def test_standalone_run_figure(self):
        fig = run_figure("fig10", exact_method="pareto-dp", **SMALL)
        assert fig.metric == "count"
        assert fig.experiment == "hom-linked"


class TestReport:
    @pytest.fixture(scope="class")
    def fig(self):
        exp = run_experiment("hom-linked", exact_method="pareto-dp", **SMALL)
        return run_figure("fig10", experiment_result=exp)

    def test_table_renders_all_rows(self, fig):
        table = render_series_table(fig)
        lines = table.splitlines()
        assert len(lines) == len(fig.xs) + 2  # header + rule + rows
        assert "ilp" in lines[0]

    def test_render_figure_header(self, fig):
        out = render_figure(fig)
        assert out.startswith("fig10 [hom-linked]: number of solutions")

    def test_json_roundtrip(self, fig):
        payload = json.loads(series_to_json(fig))
        assert payload["figure"] == "fig10"
        assert len(payload["x"]) == len(fig.xs)
        assert set(payload["series"]) == set(fig.series)

    def test_json_nan_becomes_null(self):
        exp = run_experiment("hom-linked", exact_method="pareto-dp", **SMALL)
        fig7 = run_figure("fig11", experiment_result=exp)
        payload = json.loads(series_to_json(fig7))
        flat = [v for vs in payload["series"].values() for v in vs]
        assert all(v is None or 0 <= v <= 1 for v in flat)


class TestAsciiChart:
    @pytest.fixture(scope="class")
    def figs(self):
        from repro.experiments.figures import run_experiment, run_figure

        exp = run_experiment("hom-linked", exact_method="pareto-dp", **SMALL)
        return (
            run_figure("fig10", experiment_result=exp),
            run_figure("fig11", experiment_result=exp),
        )

    def test_count_chart_structure(self, figs):
        from repro.experiments.report import ascii_chart

        chart = ascii_chart(figs[0], height=8, width=40)
        lines = chart.splitlines()
        assert len(lines) == 8 + 2  # rows + x axis + legend
        assert "o=ilp" in lines[-1]

    def test_failure_chart_uses_log_axis(self, figs):
        from repro.experiments.report import ascii_chart

        chart = ascii_chart(figs[1])
        assert "1e" in chart  # log10 tick labels

    def test_invalid_dimensions(self, figs):
        from repro.experiments.report import ascii_chart

        with pytest.raises(ValueError):
            ascii_chart(figs[0], height=1)
