"""Run the doctest examples embedded in every repro module.

Doc examples are part of the public contract: if they drift from the
implementation, the docs are lying.  This harness walks the package and
executes all of them.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing the CLI entry point would run it
        yield importlib.import_module(info.name)


MODULES = list(iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False, optionflags=doctest.ELLIPSIS)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"


def test_walk_found_the_package():
    names = {m.__name__ for m in MODULES}
    for expected in (
        "repro.core.chain",
        "repro.algorithms.heuristics",
        "repro.rbd.diagram",
        "repro.simulation.pipeline",
        "repro.complexity.reductions",
        "repro.experiments.figures",
        "repro.extensions.energy",
        "repro.ilp.model",
        "repro.util.logrel",
    ):
        assert expected in names
