"""Tests for the static periodic schedule (Section 1 deadline model)."""

import pytest

from repro.core import Interval, Mapping, Platform, TaskChain, evaluate_mapping
from repro.core.schedule import build_schedule
from repro.simulation import NoFaults, PipelineSimulator


@pytest.fixture
def mapping():
    chain = TaskChain([4.0, 6.0, 2.0], [2.0, 1.0, 0.0])
    plat = Platform(
        speeds=[2.0, 1.0, 2.0, 1.0],
        failure_rates=[1e-6] * 4,
        bandwidth=1.0,
        link_failure_rate=1e-6,
        max_replication=2,
    )
    return Mapping(
        chain,
        plat,
        [(Interval(0, 2), (0, 1)), (Interval(2, 3), (2, 3))],
    )


class TestBuildSchedule:
    def test_offsets_follow_worst_case_chain(self, mapping):
        sched = build_schedule(mapping)
        ev = evaluate_mapping(mapping)
        # Stage 0: starts at 0; stage 1 starts after wc_0 + o_0/b.
        assert sched.stage_offsets[0] == 0.0
        assert sched.stage_offsets[1] == pytest.approx(
            ev.worst_case_costs[0] + 1.0
        )

    def test_latency_equals_wl(self, mapping):
        sched = build_schedule(mapping)
        ev = evaluate_mapping(mapping)
        assert sched.latency == pytest.approx(ev.worst_case_latency)

    def test_default_period_is_wp(self, mapping):
        sched = build_schedule(mapping)
        ev = evaluate_mapping(mapping)
        assert sched.period == pytest.approx(ev.worst_case_period)

    def test_too_small_period_rejected(self, mapping):
        ev = evaluate_mapping(mapping)
        with pytest.raises(ValueError, match="cannot keep up"):
            build_schedule(mapping, period=ev.worst_case_period * 0.5)

    def test_start_and_completion_times(self, mapping):
        sched = build_schedule(mapping, period=20.0)
        assert sched.start_time(0, 0) == 0.0
        assert sched.start_time(0, 3) == pytest.approx(60.0)
        assert sched.completion_time(2) == pytest.approx(sched.latency + 40.0)
        with pytest.raises(ValueError):
            sched.start_time(5, 0)
        with pytest.raises(ValueError):
            sched.completion_time(-1)

    def test_meets_deadlines(self, mapping):
        sched = build_schedule(mapping)
        assert sched.meets_deadlines(sched.latency)
        assert not sched.meets_deadlines(sched.latency - 1.0)


class TestProcessorWindows:
    def test_no_overlap_at_wp(self, mapping):
        """At P = WP, consecutive data sets never overlap on a processor."""
        sched = build_schedule(mapping)
        for u in range(mapping.platform.p):
            windows = sched.processor_busy_intervals(u, 5)
            for (a1, b1), (a2, b2) in zip(windows, windows[1:]):
                assert b1 <= a2 + 1e-9

    def test_unused_processor_has_no_windows(self):
        chain = TaskChain([4.0], [0.0])
        plat = Platform.homogeneous_platform(3, max_replication=1)
        m = Mapping(chain, plat, [(Interval(0, 1), (0,))])
        sched = build_schedule(m)
        assert sched.processor_busy_intervals(2, 3) == []


class TestGantt:
    def test_renders_all_replicas(self, mapping):
        sched = build_schedule(mapping)
        art = sched.gantt(n_datasets=2)
        lines = art.splitlines()
        assert len(lines) == 1 + mapping.processors_used
        assert "P0" in art and "P3" in art

    def test_datasets_appear_as_digits(self, mapping):
        art = build_schedule(mapping).gantt(n_datasets=3)
        assert "0" in art and "1" in art and "2" in art

    def test_invalid_args(self, mapping):
        with pytest.raises(ValueError):
            build_schedule(mapping).gantt(n_datasets=0)


class TestAgainstSimulator:
    def test_static_schedule_bounds_fault_free_execution(self, mapping):
        """Section 1's claim: with period >= WP and the static offsets,
        every data set K completes by K*P + WL.  The event-driven
        simulator (which forwards *as early as possible*) must finish no
        later than the static schedule at every data set."""
        sched = build_schedule(mapping)
        sim = PipelineSimulator(mapping, faults=NoFaults())
        run = sim.run(n_datasets=8, period=sched.period)
        for k, t in enumerate(run.completion_times):
            assert t <= sched.completion_time(k) + 1e-9

    def test_deadline_statement(self, mapping):
        """Data set K entering at K*P meets deadline K*P + L iff the
        schedule latency is <= L."""
        sched = build_schedule(mapping, period=20.0)
        L = sched.latency
        for k in range(5):
            deadline = k * 20.0 + L
            assert sched.completion_time(k) <= deadline + 1e-9
