"""Tests for the declarative scenario subsystem (repro.scenarios)."""

import dataclasses
import json

import numpy as np
import pytest

from repro.core import Platform, TaskChain
from repro.experiments import get_method, run_crosscheck, run_sweep
from repro.experiments.cache import ResultCache
from repro.experiments.instances import heterogeneous_suite, homogeneous_suite
from repro.io import dumps, loads
from repro.scenarios import (
    SCENARIOS,
    Bimodal,
    Constant,
    Correlated,
    HotSpare,
    LogNormal,
    LogUniform,
    Scenario,
    ScenarioSpec,
    Uniform,
    UnknownScenarioError,
    distribution_from_value,
    generate_ensemble,
    materialize_instances,
    get_scenario,
    load_spec,
    register_scenario,
    scenario_hash,
    spec_from_dict,
    spec_is_homogeneous,
)

BUILTINS = (
    "section8-hom",
    "section8-het",
    "scaling-stress",
    "long-chain",
    "high-heterogeneity",
    "unreliable-links",
    "hot-spare",
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestDistributions:
    def test_constant_draws_no_randomness(self):
        a, b = rng(1), rng(1)
        values = Constant(4.0).draw(a, 5)
        assert np.all(values == 4.0)
        # The stream was not consumed: both generators still agree.
        assert a.uniform() == b.uniform()
        assert not Constant(1.0).stochastic

    def test_uniform_integral_matches_core_draw(self):
        from repro.core.generate import draw_uniform

        values = Uniform(1.0, 100.0, integral=True).draw(rng(3), 50)
        expected = draw_uniform(rng(3), 1.0, 100.0, 50, True)
        assert np.array_equal(values, expected)
        assert np.all(values == np.floor(values))
        assert np.all((values >= 1) & (values <= 100))

    def test_loguniform_range(self):
        values = LogUniform(1e-9, 1e-6).draw(rng(), 500)
        assert np.all((values >= 1e-9) & (values <= 1e-6))
        # Spread across decades, not clustered at one end.
        assert np.ptp(np.log10(values)) > 1.5

    def test_lognormal_clip(self):
        values = LogNormal(mean=3.0, sigma=1.5, low=1.0, high=50.0).draw(rng(), 400)
        assert np.all((values >= 1.0) & (values <= 50.0))
        assert np.any(values == 50.0)  # the tail actually hits the clip

    def test_bimodal_modes(self):
        dist = Bimodal(1.0, 10.0, 80.0, 100.0, weight=0.3, integral=True)
        values = dist.draw(rng(), 600)
        low = values <= 10.0
        high = values >= 80.0
        assert np.all(low | high)
        assert 0.15 < high.mean() < 0.45  # ~weight

    def test_correlated_sign_follows_rho(self):
        work = Uniform(1.0, 100.0).draw(rng(1), 400)
        pos = Correlated(1.0, 10.0, rho=0.9).draw_given(rng(2), work)
        neg = Correlated(1.0, 10.0, rho=-0.9).draw_given(rng(2), work)
        assert np.corrcoef(work, pos)[0, 1] > 0.5
        assert np.corrcoef(work, neg)[0, 1] < -0.5
        assert np.all((pos >= 1.0) & (pos <= 10.0))

    def test_correlated_requires_reference(self):
        with pytest.raises(ValueError, match="reference"):
            Correlated(1.0, 10.0).draw(rng(), 5)

    def test_hot_spare_pattern(self):
        values = HotSpare(base=1e-5, spare=1e-9, n_spares=2).draw(rng(), 6)
        assert np.all(values[:4] == 1e-5) and np.all(values[4:] == 1e-9)
        with pytest.raises(ValueError, match="exceeds"):
            HotSpare(base=1e-5, spare=1e-9, n_spares=9).draw(rng(), 4)

    def test_validation(self):
        with pytest.raises(ValueError, match="low <= high"):
            Uniform(5.0, 1.0)
        with pytest.raises(ValueError, match="low > 0"):
            LogUniform(0.0, 1.0)
        with pytest.raises(ValueError, match="weight"):
            Bimodal(0, 1, 2, 3, weight=1.5)
        with pytest.raises(ValueError, match="rho"):
            Correlated(0, 1, rho=2.0)

    def test_dict_codec(self):
        dist = Bimodal(1.0, 10.0, 80.0, 100.0, weight=0.3, integral=True)
        assert distribution_from_value(dist.to_dict()) == dist
        assert distribution_from_value(7) == Constant(7.0)
        with pytest.raises(ValueError, match="unknown distribution kind"):
            distribution_from_value({"kind": "zipf"})
        with pytest.raises(ValueError, match="unknown parameters"):
            distribution_from_value({"kind": "uniform", "low": 1, "high": 2, "mu": 3})


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="n_instances"):
            ScenarioSpec(name="x", n_instances=0)
        with pytest.raises(ValueError, match="n_tasks"):
            ScenarioSpec(name="x", n_tasks=0)
        with pytest.raises(ValueError, match="rng_mode"):
            ScenarioSpec(name="x", rng_mode="quantum")
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec(name="")
        with pytest.raises(ValueError, match="only valid for the output"):
            ScenarioSpec(name="x", work=Correlated(1.0, 10.0))
        with pytest.raises(ValueError, match="hom_counterpart_speed"):
            ScenarioSpec(name="x", hom_counterpart_speed=-1.0)

    def test_axes_and_variants(self):
        spec = ScenarioSpec(name="sweep", n_tasks=(5, 10), p=(3, 4, 6))
        assert spec.axes == {"n_tasks": (5, 10), "p": (3, 4, 6)}
        variants = spec.variants()
        assert len(variants) == 6
        assert all(not v.axes for v in variants)
        assert variants[0].name == "sweep[n_tasks=5][p=3]"
        # No axes -> identity.
        flat = ScenarioSpec(name="flat")
        assert flat.variants() == [flat]

    def test_with_revalidates(self):
        spec = ScenarioSpec(name="x")
        assert spec.with_(n_tasks=7).n_tasks == 7
        with pytest.raises(ValueError, match="K"):
            spec.with_(K=0)

    def test_io_roundtrip(self):
        spec = get_scenario("section8-het").spec
        decoded = loads(dumps(spec))
        assert decoded == spec
        payload = json.loads(dumps(spec))
        assert payload["type"] == "ScenarioSpec"

    def test_spec_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fields"):
            spec_from_dict({"name": "x", "n_taskss": 5})
        with pytest.raises(ValueError, match="invalid scenario spec"):
            spec_from_dict({})

    def test_load_spec_json(self, tmp_path):
        spec = get_scenario("unreliable-links").spec.with_(n_instances=3)
        path = tmp_path / "spec.json"
        path.write_text(dumps(spec))
        assert load_spec(path) == spec

    def test_load_spec_toml(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "spec.toml"
        path.write_text(
            'name = "toml-scn"\n'
            "n_instances = 2\n"
            "n_tasks = 8\n"
            "[work]\n"
            'kind = "uniform"\n'
            "low = 1.0\n"
            "high = 50.0\n"
            "integral = true\n"
        )
        spec = load_spec(path)
        assert spec.name == "toml-scn"
        assert spec.work == Uniform(1.0, 50.0, integral=True)
        assert spec.p == 10  # defaults fill in

    def test_scenario_hash_ignores_cosmetics(self):
        spec = get_scenario("section8-hom").spec
        assert scenario_hash(spec) == scenario_hash(
            spec.with_(name="other", description="zzz", n_instances=7)
        )
        assert scenario_hash(spec) != scenario_hash(spec.with_(K=2))


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTINS) <= set(SCENARIOS)
        assert len(SCENARIOS) >= 6

    def test_capability_metadata(self):
        assert get_scenario("section8-hom").homogeneous
        assert not get_scenario("section8-het").homogeneous
        assert get_scenario("section8-het").paired
        assert not get_scenario("hot-spare").homogeneous  # het failure rates

    def test_unknown_scenario(self):
        with pytest.raises(UnknownScenarioError, match="unknown scenario"):
            get_scenario("warehouse-42")
        # Both historical exception families keep working.
        with pytest.raises(KeyError):
            get_scenario("warehouse-42")
        with pytest.raises(ValueError):
            get_scenario("warehouse-42")

    def test_duplicate_rejected_replace_allowed(self):
        spec = ScenarioSpec(name="dup-test", n_instances=1)
        try:
            register_scenario(spec)
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(spec)
            replaced = register_scenario(spec.with_(K=2), replace=True)
            assert replaced.spec.K == 2
        finally:
            SCENARIOS.pop("dup-test", None)

    def test_false_homogeneity_claim_rejected(self):
        spec = ScenarioSpec(name="bogus-hom", speed=Uniform(1.0, 9.0))
        with pytest.raises(ValueError, match="claims homogeneous"):
            register_scenario(spec, homogeneous=True)
        assert "bogus-hom" not in SCENARIOS

    def test_spec_is_homogeneous(self):
        assert spec_is_homogeneous(get_scenario("section8-hom").spec)
        assert not spec_is_homogeneous(get_scenario("section8-het").spec)


class TestSection8BitIdentity:
    """Acceptance: the scenario re-expressions equal the legacy suites."""

    @pytest.mark.parametrize("seed", [0, 13])
    def test_homogeneous_suite(self, seed):
        legacy = homogeneous_suite(n_instances=6, seed=seed)
        scenario = materialize_instances("section8-hom", n_instances=6, seed=seed)
        assert len(legacy) == len(scenario)
        for (lc, lp), (sc, sp) in zip(legacy, scenario):
            assert np.array_equal(lc.work, sc.work)
            assert np.array_equal(lc.output, sc.output)
            assert lp == sp

    @pytest.mark.parametrize("seed", [0, 21])
    def test_heterogeneous_suite(self, seed):
        legacy = heterogeneous_suite(n_instances=5, seed=seed)
        scenario = materialize_instances("section8-het", n_instances=5, seed=seed)
        for lpair, spair in zip(legacy, scenario):
            assert lpair.chain == spair.chain
            assert lpair.het_platform == spair.het_platform
            assert lpair.hom_platform == spair.hom_platform

    def test_prefix_stability(self):
        small = materialize_instances("section8-hom", n_instances=3, seed=4)
        big = materialize_instances("section8-hom", n_instances=6, seed=4)
        assert all(cs == cb for (cs, _), (cb, _) in zip(small, big))


class TestGeneration:
    def test_reproducible(self):
        a = materialize_instances("high-heterogeneity", n_instances=4, seed=9)
        b = materialize_instances("high-heterogeneity", n_instances=4, seed=9)
        assert all(ca == cb and pa == pb for (ca, pa), (cb, pb) in zip(a, b))

    def test_variant_expansion_counts(self):
        ensemble = materialize_instances("scaling-stress", n_instances=2, seed=0)
        spec = get_scenario("scaling-stress").spec
        assert len(ensemble) == 2 * len(spec.variants())
        sizes = {(c.n, p.p) for c, p in ensemble}
        assert sizes == {(n, p) for n in (20, 40, 80) for p in (16, 32)}

    def test_batched_respects_distributions(self):
        ensemble = materialize_instances("long-chain", n_instances=5, seed=2)
        for chain, platform in ensemble:
            assert chain.n == 120
            body = chain.work
            assert np.all((body <= 20.0) | (body >= 80.0))  # bimodal
            assert np.all(chain.output[:-1] <= 10.0)
            assert chain.output[-1] == 0.0
            assert platform.homogeneous

    def test_hot_spare_platforms(self):
        for _, platform in materialize_instances("hot-spare", n_instances=3, seed=0):
            rates = platform.failure_rates
            assert np.all(rates[:-3] == 1e-5) and np.all(rates[-3:] == 1e-9)
            assert not platform.homogeneous

    def test_unreliable_links_correlation(self):
        chains = [c for c, _ in materialize_instances("unreliable-links", n_instances=20, seed=1)]
        work = np.concatenate([c.work[:-1] for c in chains])
        output = np.concatenate([c.output[:-1] for c in chains])
        assert np.corrcoef(work, output)[0, 1] > 0.4

    @pytest.mark.parametrize(
        "regime",
        [
            LogUniform(1e-9, 1e-6),
            # Deterministic but non-constant: there is no single rate the
            # homogeneous counterpart could honestly carry.
            HotSpare(base=1e-5, spare=1e-9, n_spares=3),
        ],
        ids=["stochastic", "hot-spare"],
    )
    def test_paired_constant_failure_required(self, regime):
        spec = ScenarioSpec(
            name="bad-pair",
            proc_failure=regime,
            hom_counterpart_speed=5.0,
            n_instances=1,
        )
        with pytest.raises(ValueError, match="constant proc_failure"):
            materialize_instances(spec)

    def test_resolve_rejects_junk(self):
        from repro.scenarios import resolve_scenario

        with pytest.raises(TypeError, match="scenario must be"):
            resolve_scenario(42)


class TestSweepIntegration:
    def tiny_spec(self):
        return get_scenario("section8-hom").spec.with_(
            name="tiny-hom", n_instances=3, n_tasks=6, p=4
        )

    def test_run_sweep_accepts_scenario_name(self):
        sweep = run_sweep(
            "section8-hom",
            [get_method("heur-l")],
            [(200.0, 750.0)],
            n_instances=3,
        )
        assert sweep.solved.shape == (1, 1, 3)

    def test_run_sweep_accepts_spec_and_caches_by_spec_hash(self, tmp_path):
        """Acceptance: a second scenario sweep is served entirely from cache."""
        spec = self.tiny_spec()
        methods = [get_method("heur-l"), get_method("heur-p")]
        bounds = [(150.0, 750.0), (400.0, 750.0)]

        cold = ResultCache(tmp_path)
        first = run_sweep(spec, methods, bounds, cache=cold, seed=5)
        assert cold.misses == 6 and cold.puts == 6 and cold.hits == 0

        warm = ResultCache(tmp_path)
        second = run_sweep(spec, methods, bounds, cache=warm, seed=5)
        assert warm.misses == 0 and warm.puts == 0 and warm.hits == 6
        assert np.array_equal(first.solved, second.solved)
        assert np.array_equal(first.failure, second.failure)

    def test_cache_key_includes_spec_hash(self, tmp_path):
        from repro.solve import Problem

        spec = self.tiny_spec()
        cache = ResultCache(tmp_path)
        chain, platform = materialize_instances(spec, seed=5)[0]
        unit = [Problem(chain, platform, 150.0, 750.0)]
        plain = cache.unit_key("heur-l", unit)
        scoped = cache.unit_key("heur-l", unit, scenario=scenario_hash(spec))
        other = cache.unit_key(
            "heur-l", unit,
            scenario=scenario_hash(spec.with_(link_failure_rate=1e-4)),
        )
        assert len({plain, scoped, other}) == 3

    def test_extended_ensemble_reuses_prefix_units(self, tmp_path):
        """n_instances is excluded from the spec hash, so growing the
        ensemble only computes the new instances."""
        spec = self.tiny_spec()
        methods = [get_method("heur-l")]
        bounds = [(200.0, 750.0)]
        cache = ResultCache(tmp_path)
        run_sweep(spec, methods, bounds, cache=cache, seed=5)
        grown = ResultCache(tmp_path)
        run_sweep(spec.with_(n_instances=5), methods, bounds, cache=grown, seed=5)
        assert grown.hits == 3 and grown.misses == 2

    def test_run_sweep_unknown_scenario(self):
        with pytest.raises(UnknownScenarioError):
            run_sweep("no-such-workload", [get_method("heur-l")], [(1.0, 1.0)])

    def test_run_sweep_paired_scenario_uses_het_side(self):
        sweep = run_sweep(
            "section8-het",
            [get_method("heur-l-paper")],
            [(100.0, 200.0)],
            n_instances=2,
        )
        assert sweep.solved.shape == (1, 1, 2)


class TestCrosscheckIntegration:
    def test_scenario_population(self):
        report = run_crosscheck(
            n_instances=2, seed=3, n_tasks=4, p=3, simulate=False,
            scenario="unreliable-links",
        )
        assert report.instances == 2
        assert report.solver_disagreements == 0
        assert report.rbd_disagreements == 0

    def test_heterogeneous_scenario_rejected(self):
        with pytest.raises(ValueError, match="homogeneous scenario"):
            run_crosscheck(n_instances=1, scenario="high-heterogeneity")

    def test_sweep_axis_scenario_keeps_population_size(self):
        """A spec with a surviving sweep axis (bandwidth is not
        overridden by the cross-check's sizing) must still check
        exactly n_instances instances, sampled across the variants."""
        spec = ScenarioSpec(
            name="axis-check", bandwidth=(0.5, 2.0), n_instances=1
        )
        report = run_crosscheck(
            n_instances=2, seed=1, n_tasks=4, p=3, simulate=False, scenario=spec
        )
        assert report.instances == 2
        assert report.solver_disagreements == 0
        assert report.rbd_disagreements == 0


class TestScenarioObject:
    def test_generate_shortcut_and_describe(self):
        scenario = get_scenario("section8-hom")
        assert isinstance(scenario, Scenario)
        ensemble = scenario.generate(n_instances=2, seed=1)
        assert len(ensemble) == 2
        chain, platform = ensemble[0]
        assert isinstance(chain, TaskChain) and isinstance(platform, Platform)
        d = scenario.describe()
        assert d["name"] == "section8-hom" and d["homogeneous"] is True
        assert d["variants"] == 1 and "section8" in d["tags"]
        assert dataclasses.is_dataclass(scenario)


class TestGenerateInstancesRemoved:
    """The deprecated generate_instances shim is gone after its
    one-release window; materialize_instances is the object-level API."""

    def test_shim_is_gone(self):
        import repro.scenarios
        import repro.scenarios.generate as generate_mod

        assert not hasattr(repro.scenarios, "generate_instances")
        assert not hasattr(generate_mod, "generate_instances")
        assert "generate_instances" not in repro.scenarios.__all__

    def test_materialize_instances_matches_ensemble_rows(self):
        ensemble = generate_ensemble("section8-hom", n_instances=3, seed=8)
        current = materialize_instances("section8-hom", n_instances=3, seed=8)
        assert len(current) == 3
        for i, (chain, platform) in enumerate(current):
            echain, eplatform = ensemble[i]
            assert chain == echain and platform == eplatform

    def test_scenario_generate_is_quiet(self):
        # The registry convenience routes through the ensemble path
        # without the migration nag.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            pairs = get_scenario("section8-het").generate(n_instances=2, seed=1)
        assert len(pairs) == 2 and pairs[0].hom_platform == pairs[1].hom_platform
