"""Unit tests for the Pareto-frontier container."""


from repro.util.pareto import ParetoFrontier, dominates


class TestDominates:
    def test_strict_both(self):
        assert dominates(1.0, 5.0, 2.0, 4.0)

    def test_equal_points_do_not_dominate(self):
        assert not dominates(1.0, 5.0, 1.0, 5.0)

    def test_one_coordinate_strict(self):
        assert dominates(1.0, 5.0, 1.0, 4.0)
        assert dominates(1.0, 5.0, 2.0, 5.0)

    def test_incomparable(self):
        assert not dominates(1.0, 3.0, 2.0, 5.0)
        assert not dominates(2.0, 5.0, 1.0, 3.0)


class TestParetoFrontier:
    def test_insert_and_len(self):
        f = ParetoFrontier()
        assert f.insert(1.0, 10.0)
        assert f.insert(2.0, 20.0)
        assert len(f) == 2

    def test_dominated_rejected(self):
        f = ParetoFrontier()
        f.insert(1.0, 10.0)
        assert not f.insert(2.0, 5.0)
        assert not f.insert(1.0, 10.0)  # duplicate: incumbent wins
        assert len(f) == 1

    def test_dominating_removes(self):
        f = ParetoFrontier()
        f.insert(2.0, 5.0)
        f.insert(3.0, 8.0)
        assert f.insert(1.0, 9.0)  # dominates both
        assert len(f) == 1
        assert f.costs == (1.0,)

    def test_sorted_invariant(self):
        f = ParetoFrontier()
        pts = [(3.0, 30.0), (1.0, 10.0), (2.0, 20.0), (0.5, 5.0)]
        for c, v in pts:
            f.insert(c, v)
        assert list(f.costs) == sorted(f.costs)
        assert list(f.values) == sorted(f.values)

    def test_partial_removal(self):
        f = ParetoFrontier()
        f.insert(1.0, 1.0)
        f.insert(2.0, 2.0)
        f.insert(3.0, 3.0)
        # Dominates the middle and last but not the first.
        assert f.insert(1.5, 4.0)
        assert f.costs == (1.0, 1.5)
        assert f.values == (1.0, 4.0)

    def test_equal_cost_better_value_replaces(self):
        f = ParetoFrontier()
        f.insert(1.0, 1.0)
        assert f.insert(1.0, 2.0)
        assert len(f) == 1
        assert f.values == (2.0,)

    def test_equal_cost_worse_value_rejected(self):
        f = ParetoFrontier()
        f.insert(1.0, 2.0)
        assert not f.insert(1.0, 1.0)

    def test_best_value_within(self):
        f = ParetoFrontier()
        f.insert(1.0, 10.0, "a")
        f.insert(2.0, 20.0, "b")
        f.insert(4.0, 40.0, "c")
        assert f.best_value_within(3.0) == (20.0, "b")
        assert f.best_value_within(0.5) is None
        assert f.best_value_within(100.0) == (40.0, "c")
        assert f.best_value_within(2.0) == (20.0, "b")  # inclusive

    def test_prune_cost_above(self):
        f = ParetoFrontier()
        f.insert(1.0, 10.0)
        f.insert(2.0, 20.0)
        f.insert(3.0, 30.0)
        f.prune_cost_above(2.0)
        assert f.costs == (1.0, 2.0)

    def test_payload_carried(self):
        f = ParetoFrontier()
        f.insert(1.0, 10.0, {"k": 1})
        (c, v, payload), = list(f)
        assert payload == {"k": 1}

    def test_mutual_nondomination_invariant_random(self):
        import random

        rnd = random.Random(42)
        f = ParetoFrontier()
        pts = [(rnd.uniform(0, 10), rnd.uniform(0, 10)) for _ in range(300)]
        for c, v in pts:
            f.insert(c, v)
        items = [(c, v) for c, v, _ in f]
        for i, a in enumerate(items):
            for j, b in enumerate(items):
                if i != j:
                    assert not dominates(a[0], a[1], b[0], b[1]) or a == b
        # Every inserted point is dominated-or-equal by something kept.
        for c, v in pts:
            assert any(kc <= c and kv >= v for kc, kv in items)
