"""Property-based tests (hypothesis) on the core numerics and invariants."""


import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import Platform, TaskChain, evaluate_mapping, Mapping
from repro.core.evaluation import (
    expected_cost,
    mapping_log_reliability,
    stage_log_reliability,
    worst_case_cost,
)
from repro.util import logrel
from repro.util.pareto import ParetoFrontier, dominates

# Log-reliabilities in a representable, interesting range.
logrels = st.floats(min_value=-50.0, max_value=0.0, allow_nan=False)
tiny_logrels = st.floats(min_value=-1e-6, max_value=0.0, allow_nan=False)
probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestLogrelProperties:
    @given(st.lists(logrels, min_size=1, max_size=8))
    def test_serial_never_exceeds_weakest_link(self, ells):
        assert logrel.serial(ells) <= min(ells) + 1e-12

    @given(st.lists(logrels, min_size=1, max_size=8))
    def test_parallel_never_below_strongest_branch(self, ells):
        assert logrel.parallel(ells) >= max(ells) - 1e-12

    @given(st.lists(logrels, min_size=1, max_size=6))
    def test_parallel_permutation_invariant(self, ells):
        import random

        shuffled = ells[:]
        random.Random(0).shuffle(shuffled)
        assert logrel.parallel(ells) == pytest.approx(
            logrel.parallel(shuffled), rel=1e-9, abs=1e-300
        )

    @given(logrels, st.integers(min_value=1, max_value=10))
    def test_parallel_k_matches_list_form(self, ell, k):
        assert logrel.parallel_k(ell, k) == pytest.approx(
            logrel.parallel([ell] * k), rel=1e-9, abs=1e-300
        )

    @given(logrels, st.integers(min_value=1, max_value=9))
    def test_replication_monotone(self, ell, k):
        assume(ell < 0)
        assert logrel.parallel_k(ell, k + 1) >= logrel.parallel_k(ell, k)

    @given(logrels)
    def test_failure_reliability_complement(self, ell):
        assert logrel.failure(ell) + logrel.reliability(ell) == pytest.approx(1.0)

    @given(probs)
    def test_from_failure_roundtrip(self, f):
        assume(f < 1.0)
        assert logrel.failure(logrel.from_failure(f)) == pytest.approx(
            f, rel=1e-12, abs=1e-300
        )

    @given(tiny_logrels, st.integers(min_value=1, max_value=3))
    def test_precision_in_paper_regime(self, ell, k):
        """f(k replicas) == f(single)^k to high relative accuracy even
        when the failure probabilities are ~1e-6..1e-300."""
        assume(ell < 0)
        f1 = logrel.failure(ell)
        fk = logrel.failure(logrel.parallel_k(ell, k))
        assume(f1 > 0 and fk > 0)
        assert fk == pytest.approx(f1**k, rel=1e-6)

    @given(st.lists(logrels, min_size=1, max_size=6))
    def test_vectorized_matches_scalar(self, ells):
        arr = np.array(ells)
        out = logrel.parallel_k_many(arr, 2)
        for e, o in zip(ells, out):
            assert o == pytest.approx(logrel.parallel_k(e, 2), rel=1e-9, abs=1e-300)


class TestParetoProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            max_size=60,
        )
    )
    def test_frontier_invariants(self, points):
        f = ParetoFrontier()
        for c, v in points:
            f.insert(c, v)
        kept = [(c, v) for c, v, _ in f]
        # sorted by cost, strictly increasing value
        costs = [c for c, _ in kept]
        values = [v for _, v in kept]
        assert costs == sorted(costs)
        assert all(b > a for a, b in zip(values, values[1:]))
        # mutual non-domination
        for i, a in enumerate(kept):
            for j, b in enumerate(kept):
                if i != j:
                    assert not dominates(*a, *b)
        # completeness: every input point is covered by some kept point
        for c, v in points:
            assert any(kc <= c and kv >= v for kc, kv in kept)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=10, allow_nan=False),
                st.floats(min_value=0, max_value=10, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        ),
        st.floats(min_value=0, max_value=10, allow_nan=False),
    )
    def test_best_value_within_is_exact(self, points, budget):
        f = ParetoFrontier()
        for c, v in points:
            f.insert(c, v)
        hit = f.best_value_within(budget)
        brute = [v for c, v in points if c <= budget]
        if not brute:
            assert hit is None
        else:
            assert hit is not None
            assert hit[0] == pytest.approx(max(brute))


@st.composite
def small_instances(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    work = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    output = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    p = draw(st.integers(min_value=1, max_value=5))
    speeds = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=20.0, allow_nan=False),
            min_size=p,
            max_size=p,
        )
    )
    rates = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
            min_size=p,
            max_size=p,
        )
    )
    K = draw(st.integers(min_value=1, max_value=3))
    chain = TaskChain(work, output)
    platform = Platform(
        speeds, rates, bandwidth=1.0, link_failure_rate=1e-3, max_replication=K
    )
    return chain, platform


@st.composite
def instance_with_mapping(draw):
    chain, platform = draw(small_instances())
    n, p, K = chain.n, platform.p, platform.max_replication
    # Random partition.
    cuts = sorted(
        draw(
            st.sets(st.integers(min_value=1, max_value=max(n - 1, 1)), max_size=n - 1)
        )
    ) if n > 1 else []
    m = len(cuts) + 1
    assume(m <= p)
    from repro.core.interval import partition_from_cuts

    partition = partition_from_cuts(n, cuts)
    # Random disjoint replica sets.
    procs = list(range(p))
    draw_order = draw(st.permutations(procs))
    replicas = []
    idx = 0
    for j in range(m):
        left_needed = m - j - 1
        avail = len(draw_order) - idx - left_needed
        q = draw(st.integers(min_value=1, max_value=max(1, min(K, avail))))
        replicas.append(tuple(draw_order[idx : idx + q]))
        idx += q
    mapping = Mapping(chain, platform, list(zip(partition, replicas)))
    return mapping


class TestEvaluationProperties:
    @given(instance_with_mapping())
    @settings(max_examples=60, deadline=None)
    def test_objective_sanity(self, mapping):
        ev = evaluate_mapping(mapping)
        assert ev.log_reliability <= 0.0
        assert 0.0 <= ev.failure_probability <= 1.0
        assert ev.expected_latency <= ev.worst_case_latency + 1e-9
        assert ev.expected_period <= ev.worst_case_period + 1e-9
        assert ev.worst_case_period <= ev.worst_case_latency + 1e-9

    @given(instance_with_mapping())
    @settings(max_examples=60, deadline=None)
    def test_eq9_equals_stage_product(self, mapping):
        chain, platform = mapping.chain, mapping.platform
        total = sum(
            stage_log_reliability(chain, platform, iv.start, iv.stop, procs)
            for iv, procs in mapping
        )
        assert mapping_log_reliability(mapping) == pytest.approx(
            total, rel=1e-12, abs=1e-300
        )

    @given(instance_with_mapping())
    @settings(max_examples=60, deadline=None)
    def test_costs_bracket_speeds(self, mapping):
        chain, platform = mapping.chain, mapping.platform
        for iv, procs in mapping:
            w = chain.work_between(iv.start, iv.stop)
            fastest = max(float(platform.speeds[u]) for u in procs)
            slowest = min(float(platform.speeds[u]) for u in procs)
            ec = expected_cost(chain, platform, iv.start, iv.stop, procs)
            wc = worst_case_cost(chain, platform, iv.start, iv.stop, procs)
            assert w / fastest * (1 - 1e-9) - 1e-9 <= ec
            assert ec <= w / slowest * (1 + 1e-9) + 1e-9
            assert wc == pytest.approx(w / slowest)

    @given(instance_with_mapping())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    def test_adding_replica_improves_reliability(self, mapping):
        platform = mapping.platform
        used = {u for procs in mapping.replicas for u in procs}
        free = [u for u in range(platform.p) if u not in used]
        assume(free)
        # Find an interval below the replication cap.
        target = None
        for j, procs in enumerate(mapping.replicas):
            if len(procs) < platform.max_replication:
                target = j
                break
        assume(target is not None)
        assignment = [
            (iv, procs + (free[0],) if j == target else procs)
            for j, (iv, procs) in enumerate(mapping)
        ]
        bigger = Mapping(mapping.chain, platform, assignment)
        assert mapping_log_reliability(bigger) >= mapping_log_reliability(mapping) - 1e-15


class TestDPAgainstBruteForceProperty:
    @given(small_instances())
    @settings(max_examples=25, deadline=None)
    def test_algorithm1_optimal_on_hom(self, inst):
        chain, platform = inst
        # Make it homogeneous by copying processor 0.
        hom = Platform(
            [float(platform.speeds[0])] * platform.p,
            [float(platform.failure_rates[0])] * platform.p,
            bandwidth=platform.bandwidth,
            link_failure_rate=platform.link_failure_rate,
            max_replication=platform.max_replication,
        )
        from repro.algorithms import brute_force_best, optimize_reliability

        dp = optimize_reliability(chain, hom)
        bf = brute_force_best(chain, hom)
        assert dp.log_reliability == pytest.approx(
            bf.log_reliability, rel=1e-9, abs=1e-300
        )
