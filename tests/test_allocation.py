"""Tests for Algo-Alloc (Theorem 4) and its heterogeneous variant (Section 7.2)."""

import itertools

import numpy as np
import pytest

from repro.algorithms import algo_alloc, algo_alloc_het
from repro.core import (
    Interval,
    Mapping,
    Platform,
    TaskChain,
    evaluate_mapping,
    random_chain,
)
from repro.core.interval import partition_from_cuts
from repro.core.evaluation import mapping_log_reliability


def hom_platform(p, K, failure_rate=1e-4, link_failure_rate=1e-3):
    return Platform.homogeneous_platform(
        p, failure_rate=failure_rate, link_failure_rate=link_failure_rate,
        max_replication=K,
    )


def best_allocation_by_enumeration(chain, platform, partition):
    """Brute-force optimal replica-count allocation (homogeneous)."""
    m, p, K = len(partition), platform.p, platform.max_replication
    best = None
    for counts in itertools.product(range(1, K + 1), repeat=m):
        if sum(counts) > p:
            continue
        nxt, assignment = 0, []
        for iv, q in zip(partition, counts):
            assignment.append((iv, tuple(range(nxt, nxt + q))))
            nxt += q
        ell = mapping_log_reliability(Mapping(chain, platform, assignment))
        if best is None or ell > best:
            best = ell
    return best


class TestAlgoAllocHomogeneous:
    def test_one_processor_per_interval_minimum(self):
        chain = TaskChain([1.0, 1.0, 1.0], [1.0, 1.0, 0.0])
        plat = hom_platform(3, 3)
        mapping = algo_alloc(chain, plat, partition_from_cuts(3, [1, 2]))
        assert all(len(r) == 1 for r in mapping.replicas)

    def test_saturates_at_k_when_enough_processors(self):
        chain = TaskChain([1.0, 1.0], [1.0, 0.0])
        plat = hom_platform(6, 3)
        mapping = algo_alloc(chain, plat, partition_from_cuts(2, [1]))
        assert all(len(r) == 3 for r in mapping.replicas)  # i*K <= p

    def test_extra_processor_goes_to_weakest_interval(self):
        # Interval works 10 vs 1: the big interval is least reliable, so
        # its replication ratio gain is largest.
        chain = TaskChain([10.0, 1.0], [0.0, 0.0])
        plat = hom_platform(3, 2)
        mapping = algo_alloc(chain, plat, partition_from_cuts(2, [1]))
        assert len(mapping.replicas[0]) == 2
        assert len(mapping.replicas[1]) == 1

    def test_too_few_processors_rejected(self):
        chain = TaskChain([1.0, 1.0], [1.0, 0.0])
        plat = hom_platform(1, 1)
        with pytest.raises(ValueError, match="at least"):
            algo_alloc(chain, plat, partition_from_cuts(2, [1]))

    def test_rejects_heterogeneous(self):
        chain = TaskChain([1.0], [0.0])
        plat = Platform([1.0, 2.0], [1e-8, 1e-8], max_replication=2)
        with pytest.raises(ValueError, match="homogeneous"):
            algo_alloc(chain, plat, [Interval(0, 1)])

    @pytest.mark.parametrize("seed", range(10))
    def test_theorem4_optimality(self, seed):
        """Greedy allocation matches brute-force enumeration (Theorem 4)."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        m = int(rng.integers(1, n + 1))
        p = int(rng.integers(m, m + 5))
        K = int(rng.integers(1, 4))
        chain = random_chain(n, rng)
        cuts = sorted(rng.choice(np.arange(1, n), size=m - 1, replace=False).tolist())
        partition = partition_from_cuts(n, cuts)
        plat = hom_platform(p, K)
        got = mapping_log_reliability(algo_alloc(chain, plat, partition))
        want = best_allocation_by_enumeration(chain, plat, partition)
        assert got == pytest.approx(want, rel=1e-9)

    def test_theorem4_with_large_rates(self):
        # Failure probabilities far from 0 stress the ratio ordering.
        chain = TaskChain([5.0, 2.0, 9.0], [1.0, 1.0, 0.0])
        plat = hom_platform(7, 3, failure_rate=0.05, link_failure_rate=0.01)
        partition = partition_from_cuts(3, [1, 2])
        got = mapping_log_reliability(algo_alloc(chain, plat, partition))
        want = best_allocation_by_enumeration(chain, plat, partition)
        assert got == pytest.approx(want, rel=1e-12)


class TestAlgoAllocHet:
    def test_phase1_seeds_longest_interval_with_best_processor(self):
        chain = TaskChain([10.0, 1.0], [1.0, 0.0])
        # proc 0 fastest & most reliable per lambda/s.
        plat = Platform([10.0, 1.0], [1e-8, 1e-8], max_replication=1)
        mapping = algo_alloc_het(chain, plat, partition_from_cuts(2, [1]))
        assert mapping is not None
        assert mapping.replicas[0] == (0,)  # longest interval got proc 0
        assert mapping.replicas[1] == (1,)

    def test_respects_period_bound(self):
        chain = TaskChain([10.0, 10.0], [1.0, 0.0])
        plat = Platform([10.0, 1.0], [1e-8, 1e-8], max_replication=2)
        # Slow proc (speed 1) cannot host either interval within P=5.
        mapping = algo_alloc_het(
            chain, plat, partition_from_cuts(2, [1]), max_period=5.0
        )
        assert mapping is None  # second interval cannot be seeded

    def test_period_bound_excludes_slow_replicas(self):
        chain = TaskChain([10.0], [0.0])
        plat = Platform([10.0, 1.0, 5.0], [1e-8] * 3, max_replication=3)
        mapping = algo_alloc_het(chain, plat, [Interval(0, 1)], max_period=3.0)
        assert mapping is not None
        assert mapping.replicas[0] == (0, 2)  # speed-1 proc excluded (10/1 > 3)

    def test_unbounded_uses_all_processors_up_to_k(self):
        chain = TaskChain([3.0, 4.0], [1.0, 0.0])
        plat = Platform([1.0, 2.0, 3.0, 4.0], [1e-8] * 4, max_replication=2)
        mapping = algo_alloc_het(chain, plat, partition_from_cuts(2, [1]))
        assert mapping is not None
        assert mapping.processors_used == 4

    def test_allowed_constraints(self):
        chain = TaskChain([2.0, 2.0], [1.0, 0.0])
        plat = Platform([1.0, 1.0, 1.0], [1e-8] * 3, max_replication=2)
        # Interval 0 only on proc 2; interval 1 anywhere.
        allowed = lambda u, j: (j != 0) or (u == 2)  # noqa: E731
        mapping = algo_alloc_het(chain, plat, partition_from_cuts(2, [1]), allowed=allowed)
        assert mapping is not None
        assert mapping.replicas[0] == (2,)

    def test_infeasible_constraints(self):
        chain = TaskChain([2.0, 2.0], [1.0, 0.0])
        plat = Platform([1.0, 1.0], [1e-8] * 2, max_replication=2)
        mapping = algo_alloc_het(
            chain, plat, partition_from_cuts(2, [1]), allowed=lambda u, j: j == 0
        )
        assert mapping is None

    def test_on_homogeneous_platform_matches_algo_alloc_value(self):
        # The het variant reduces to a valid (not necessarily identical,
        # but equally reliable) allocation on homogeneous platforms.
        chain = random_chain(5, rng=3)
        plat = hom_platform(7, 2)
        partition = partition_from_cuts(5, [2, 4])
        hom_ell = mapping_log_reliability(algo_alloc(chain, plat, partition))
        het = algo_alloc_het(chain, plat, partition)
        assert het is not None
        assert mapping_log_reliability(het) == pytest.approx(hom_ell, rel=1e-9)

    def test_prefers_reliable_processors(self):
        chain = TaskChain([4.0], [0.0])
        plat = Platform(
            [2.0, 2.0, 2.0],
            [1e-2, 1e-8, 1e-5],
            max_replication=1,
        )
        mapping = algo_alloc_het(chain, plat, [Interval(0, 1)])
        assert mapping is not None
        assert mapping.replicas[0] == (1,)  # smallest lambda/s

    def test_period_check_uses_worst_case(self):
        # The allocated mapping's worst-case computation per interval
        # respects the bound (communication may still exceed it).
        rng = np.random.default_rng(17)
        chain = random_chain(6, rng)
        plat = Platform(
            rng.integers(1, 100, size=8).astype(float),
            [1e-8] * 8,
            max_replication=3,
        )
        P = 40.0
        mapping = algo_alloc_het(chain, plat, partition_from_cuts(6, [2, 4]), max_period=P)
        if mapping is not None:
            ev = evaluate_mapping(mapping)
            assert max(ev.worst_case_costs) <= P + 1e-9
