"""Tests for the Section 1 baseline mappings and small utility modules."""

import math

import numpy as np
import pytest

from repro.algorithms import (
    one_to_one_best,
    pareto_dp_best,
    single_interval_best,
)
from repro.algorithms.result import SolveResult
from repro.core import Platform, TaskChain, random_chain
from repro.util.rng import ensure_rng, spawn
from repro.util.validation import (
    as_float_array,
    check_index,
    check_nonnegative,
    check_positive,
    check_probability,
)


def hom_platform(p, K=3):
    return Platform.homogeneous_platform(
        p, failure_rate=1e-8, link_failure_rate=1e-5, max_replication=K
    )


class TestOneToOne:
    def test_requires_enough_processors(self):
        chain = random_chain(5, rng=0)
        res = one_to_one_best(chain, hom_platform(3))
        assert not res.feasible
        assert "processors" in res.details.get("reason", "")

    def test_each_task_is_an_interval(self):
        chain = random_chain(4, rng=1)
        res = one_to_one_best(chain, hom_platform(8))
        assert res.feasible
        assert res.mapping.m == 4
        assert all(len(iv) == 1 for iv in res.mapping.intervals)

    def test_interval_mapping_dominates(self):
        chain = random_chain(5, rng=2)
        plat = hom_platform(8)
        interval = pareto_dp_best(chain, plat)
        o2o = one_to_one_best(chain, plat)
        assert interval.log_reliability >= o2o.log_reliability - 1e-15

    def test_bound_check(self):
        chain = TaskChain([10.0, 10.0], [50.0, 0.0])
        res = one_to_one_best(chain, hom_platform(4), max_latency=30.0)
        assert not res.feasible  # the o=50 comm is forced and blows L


class TestSingleInterval:
    def test_one_interval(self):
        chain = random_chain(6, rng=3)
        res = single_interval_best(chain, hom_platform(4))
        assert res.feasible
        assert res.mapping.m == 1

    def test_cannot_pipeline(self):
        # A period below the total work is unreachable with one interval.
        chain = TaskChain([10.0, 10.0], [1.0, 0.0])
        res = single_interval_best(chain, hom_platform(4), max_period=15.0)
        assert not res.feasible

    def test_het_platform_allocation(self):
        chain = random_chain(4, rng=4)
        plat = Platform([5.0, 1.0, 3.0], [1e-8] * 3, max_replication=2)
        res = single_interval_best(chain, plat)
        assert res.feasible
        assert len(res.mapping.replicas[0]) == 2


class TestSolveResult:
    def test_feasible_requires_payload(self):
        with pytest.raises(ValueError, match="must carry"):
            SolveResult(feasible=True)

    def test_infeasible_rejects_mapping(self):
        chain = TaskChain([1.0], [0.0])
        plat = hom_platform(1, 1)
        res = pareto_dp_best(chain, plat)
        with pytest.raises(ValueError, match="must not carry"):
            SolveResult(feasible=False, mapping=res.mapping)

    def test_infeasible_defaults(self):
        res = SolveResult.infeasible("test-method", why="because")
        assert res.log_reliability == -math.inf
        assert res.failure_probability == 1.0
        assert res.details["why"] == "because"


class TestRngUtils:
    def test_ensure_rng_idempotent(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_ensure_rng_seeds(self):
        a = ensure_rng(42).random()
        b = ensure_rng(42).random()
        assert a == b

    def test_spawn_independent_and_reproducible(self):
        kids1 = spawn(ensure_rng(7), 3)
        kids2 = spawn(ensure_rng(7), 3)
        vals1 = [k.random() for k in kids1]
        vals2 = [k.random() for k in kids2]
        assert vals1 == vals2
        assert len(set(vals1)) == 3  # distinct streams

    def test_spawn_validation(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)


class TestValidationHelpers:
    def test_as_float_array(self):
        arr = as_float_array([1, 2], "x")
        assert arr.dtype == float
        with pytest.raises(ValueError, match="one-dimensional"):
            as_float_array([[1.0]], "x")
        with pytest.raises(ValueError, match="empty"):
            as_float_array([], "x")
        with pytest.raises(ValueError, match="finite"):
            as_float_array([math.inf], "x")

    def test_scalar_checks(self):
        assert check_positive(1.0, "x") == 1.0
        with pytest.raises(ValueError):
            check_positive(0.0, "x")
        assert check_nonnegative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_nonnegative(-1.0, "x")
        assert check_probability(0.5, "x") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "x")

    def test_check_index(self):
        assert check_index(2, 5, "x") == 2
        with pytest.raises(ValueError):
            check_index(5, 5, "x")
        with pytest.raises(TypeError):
            check_index(1.0, 5, "x")  # type: ignore[arg-type]
