"""Tests for the Section 9 future-work extensions."""


import numpy as np
import pytest

from repro.core import Interval, Mapping, Platform, TaskChain, random_chain
from repro.core.evaluation import mapping_log_reliability
from repro.core.interval import partition_from_cuts
from repro.extensions import (
    compare_routing,
    energy_aware_alloc_het,
    mapping_energy,
)
from repro.algorithms.allocation import algo_alloc_het
from repro.util import logrel


def mesh_mapping(link_rate=1e-3, proc_rate=1e-2, K=2):
    chain = TaskChain([4.0, 6.0, 3.0], [2.0, 4.0, 0.0])
    plat = Platform(
        [1.0, 2.0, 1.5, 1.0, 2.5, 2.0],
        [proc_rate] * 6,
        bandwidth=1.0,
        link_failure_rate=link_rate,
        max_replication=K,
    )
    return Mapping(
        plat_chain := chain,
        plat,
        [
            (Interval(0, 1), (0, 1)),
            (Interval(1, 2), (2, 3)),
            (Interval(2, 3), (4, 5)),
        ],
    )


class TestRoutingComparison:
    def test_orderings_hold(self):
        cmp = compare_routing(mesh_mapping())
        assert cmp.routed_log_reliability <= cmp.unrouted_exact_log_reliability + 1e-12
        assert (
            cmp.unrouted_cutset_log_reliability
            <= cmp.unrouted_exact_log_reliability + 1e-12
        )

    def test_penalty_at_least_one(self):
        cmp = compare_routing(mesh_mapping(link_rate=1e-2))
        assert cmp.routing_penalty >= 1.0
        assert cmp.cutset_gap >= 1.0

    def test_single_replica_double_hop_only(self):
        """Without replication both RBDs are serial chains, but the
        routed data still hops twice per boundary ("ol1 is transmitted
        twice before reaching I2", Section 4): the gap is exactly one
        extra communication factor per interior boundary."""
        chain = TaskChain([4.0, 6.0], [2.0, 0.0])
        plat = Platform([1.0, 2.0], [1e-2] * 2, link_failure_rate=1e-2,
                        max_replication=1)
        m = Mapping(chain, plat, [(Interval(0, 1), (0,)), (Interval(1, 2), (1,))])
        cmp = compare_routing(m)
        one_hop = -1e-2 * 2.0 / 1.0  # log rcomm of the o=2 boundary
        assert cmp.routed_log_reliability == pytest.approx(
            cmp.unrouted_exact_log_reliability + one_hop, rel=1e-9
        )

    def test_perfect_links_modest_penalty(self):
        """With perfect links the unrouted mesh only reorders comm
        blocks; penalty must be small (pure replica-pairing effect)."""
        cmp = compare_routing(mesh_mapping(link_rate=0.0))
        assert 1.0 <= cmp.routing_penalty < 1.5

    def test_timing_fields_populated(self):
        cmp = compare_routing(mesh_mapping())
        assert cmp.routed_seconds >= 0
        assert cmp.unrouted_exact_seconds >= 0
        assert cmp.n_minimal_cuts > 0

    def test_paper_regime_penalty(self):
        """At the paper's rates, the routed and exact values agree to
        many digits in reliability but differ measurably in failure
        probability — the quantity the figures plot."""
        cmp = compare_routing(mesh_mapping(link_rate=1e-5, proc_rate=1e-8))
        assert cmp.routing_penalty > 1.0
        f_routed = logrel.failure(cmp.routed_log_reliability)
        assert f_routed < 1e-3


class TestEnergyMetric:
    def test_energy_by_hand(self):
        chain = TaskChain([4.0, 6.0], [2.0, 0.0])
        plat = Platform([2.0, 1.0, 3.0], [1e-8] * 3, bandwidth=2.0,
                        max_replication=2)
        m = Mapping(chain, plat, [(Interval(0, 1), (0, 1)), (Interval(1, 2), (2,))])
        # alpha=3: E = 4*2^2 + 4*1^2 + 6*3^2 + comm 2/2 * 1.0 * 2 replicas.
        want = 16 + 4 + 54 + 2.0
        assert mapping_energy(m) == pytest.approx(want)

    def test_alpha_one_is_pure_work(self):
        chain = TaskChain([4.0, 6.0], [0.0, 0.0])
        plat = Platform([2.0, 5.0], [1e-8] * 2, max_replication=1)
        m = Mapping(chain, plat, [(Interval(0, 1), (0,)), (Interval(1, 2), (1,))])
        assert mapping_energy(m, alpha=1.0) == pytest.approx(10.0)

    def test_replication_costs_energy(self):
        chain = TaskChain([4.0], [0.0])
        plat = Platform([2.0, 2.0], [1e-8] * 2, max_replication=2)
        single = Mapping(chain, plat, [(Interval(0, 1), (0,))])
        double = Mapping(chain, plat, [(Interval(0, 1), (0, 1))])
        assert mapping_energy(double) == pytest.approx(2 * mapping_energy(single))

    def test_invalid_alpha(self):
        m = mesh_mapping()
        with pytest.raises(ValueError):
            mapping_energy(m, alpha=0.5)


class TestEnergyAwareAllocation:
    @pytest.fixture
    def instance(self):
        chain = random_chain(6, rng=5)
        plat = Platform(
            np.linspace(2.0, 60.0, 8),
            [1e-8] * 8,
            link_failure_rate=1e-5,
            max_replication=3,
        )
        partition = partition_from_cuts(6, [3])
        return chain, plat, partition

    def test_unlimited_budget_matches_het_alloc_reliability(self, instance):
        chain, plat, partition = instance
        base = algo_alloc_het(chain, plat, partition)
        energy = energy_aware_alloc_het(chain, plat, partition)
        assert base is not None and energy is not None
        # Same seeds; phase-2 order may differ (per-energy scores), but
        # with an infinite budget every qualifying processor is placed.
        assert energy.processors_used == base.processors_used

    def test_budget_limits_replication(self, instance):
        # alpha = 1 makes every replica of interval j cost W_j, so the
        # seeds cost ~W_total while the full allocation costs ~3x that:
        # a 60% budget admits the seeds but not all replicas.
        chain, plat, partition = instance
        unlimited = energy_aware_alloc_het(chain, plat, partition, alpha=1.0)
        assert unlimited is not None
        full_energy = mapping_energy(unlimited, alpha=1.0)
        budget = full_energy * 0.6
        tight = energy_aware_alloc_het(
            chain, plat, partition, max_energy=budget, alpha=1.0
        )
        assert tight is not None
        assert mapping_energy(tight, alpha=1.0) <= budget
        assert tight.processors_used < unlimited.processors_used

    def test_budget_below_seed_cost_infeasible(self, instance):
        chain, plat, partition = instance
        assert (
            energy_aware_alloc_het(chain, plat, partition, max_energy=1e-6) is None
        )

    def test_reliability_energy_tradeoff_curve(self, instance):
        """Looser budgets can only improve reliability (monotone trade)."""
        chain, plat, partition = instance
        unlimited = energy_aware_alloc_het(chain, plat, partition, alpha=1.0)
        full = mapping_energy(unlimited, alpha=1.0)
        rels = []
        for frac in (0.5, 0.7, 0.9, 1.0):
            m = energy_aware_alloc_het(
                chain, plat, partition, max_energy=full * frac, alpha=1.0
            )
            assert m is not None, frac
            rels.append(mapping_log_reliability(m))
        assert all(b >= a - 1e-15 for a, b in zip(rels, rels[1:]))

    def test_respects_period_bound(self, instance):
        chain, plat, partition = instance
        m = energy_aware_alloc_het(chain, plat, partition, max_period=5.0)
        if m is not None:
            from repro.core import evaluate_mapping

            assert max(evaluate_mapping(m).worst_case_costs) <= 5.0 + 1e-9
