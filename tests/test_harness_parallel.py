"""The parallel sweep runner must be bit-identical to the serial one.

Acceptance gate for the fan-out: on a seeded 10-instance suite,
``jobs=1`` and ``jobs=4`` reproduce the serial ``SweepResult.solved``
and ``.failure`` arrays *exactly* (not approximately), including for
stochastic (seeded) methods and for ad-hoc methods that cannot cross
the process boundary.
"""

import numpy as np
import pytest

from repro.algorithms import heuristic_best
from repro.experiments import Method, get_method, homogeneous_suite, run_sweep
from repro.experiments.harness import resolve_jobs

BOUNDS = [(100.0, 750.0), (250.0, 750.0), (400.0, 750.0)]


@pytest.fixture(scope="module")
def suite():
    return homogeneous_suite(n_instances=10, seed=42)


@pytest.fixture(scope="module")
def serial(suite):
    methods = [get_method("pareto-dp"), get_method("heur-l"), get_method("heur-p")]
    return run_sweep(suite, methods, BOUNDS, jobs=1)


class TestBitIdentical:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_matches_serial(self, suite, serial, jobs):
        methods = [get_method("pareto-dp"), get_method("heur-l"), get_method("heur-p")]
        result = run_sweep(suite, methods, BOUNDS, jobs=jobs)
        assert result.method_names == serial.method_names
        assert np.array_equal(result.solved, serial.solved)
        # Bit-for-bit, not allclose: cached/parallel runs must be
        # drop-in replacements for serial ones.
        assert np.array_equal(result.failure, serial.failure)
        assert np.array_equal(result.xs, serial.xs)

    def test_solved_shape_and_content(self, suite, serial):
        assert serial.solved.shape == (3, len(BOUNDS), 10)
        # The widest bound solves at least as many instances as the
        # tightest for the exact method.
        counts = serial.counts("pareto-dp")
        assert counts[-1] >= counts[0]


class TestSeededMethods:
    """Stochastic methods get deterministic per-unit seeds."""

    def test_anneal_parallel_matches_serial(self):
        suite = homogeneous_suite(n_instances=3, seed=5)
        methods = [get_method("anneal")]
        bounds = [(200.0, 750.0), (400.0, 750.0)]
        a = run_sweep(suite, methods, bounds, jobs=1)
        b = run_sweep(suite, methods, bounds, jobs=3)
        c = run_sweep(suite, methods, bounds, jobs=1)
        assert np.array_equal(a.solved, b.solved)
        assert np.array_equal(a.failure, b.failure)
        assert np.array_equal(a.failure, c.failure)


class TestAdHocMethods:
    """Method objects outside the registry still work with jobs > 1
    (they run in the parent, since a closure cannot be shipped by
    name)."""

    def test_unregistered_method_parallel(self, suite, serial):
        local = Method(
            name="local-heur-l",
            solve=lambda problem: heuristic_best(
                problem.chain, problem.platform,
                max_period=problem.max_period, max_latency=problem.max_latency,
                which="heur-l", selection="feasible-best",
            ),
            exact=False,
            homogeneous_only=False,
        )
        mixed = run_sweep(suite, [local, get_method("heur-p")], BOUNDS, jobs=4)
        assert np.array_equal(mixed.solved[0], serial.solved[serial._idx("heur-l")])
        assert np.array_equal(mixed.failure[1], serial.failure[serial._idx("heur-p")])


class TestJobsKnob:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3
        assert resolve_jobs(2) == 2  # explicit beats env

    def test_invalid_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(0)

    def test_env_jobs_drives_sweep(self, monkeypatch, suite, serial):
        monkeypatch.setenv("REPRO_JOBS", "2")
        methods = [get_method("pareto-dp"), get_method("heur-l"), get_method("heur-p")]
        result = run_sweep(suite, methods, BOUNDS)
        assert np.array_equal(result.failure, serial.failure)
