"""Unit tests for Section 4 evaluation (Eqs. (1)-(9)) with hand-computed cases."""

import math

import pytest

from repro.core import Interval, Mapping, Platform, TaskChain, evaluate_mapping
from repro.core.evaluation import (
    comm_log_reliability,
    expected_cost,
    interval_log_reliability,
    mapping_log_reliability,
    stage_log_reliability,
    worst_case_cost,
)


@pytest.fixture
def chain():
    return TaskChain(work=[4.0, 6.0], output=[2.0, 0.0])


@pytest.fixture
def platform():
    return Platform(
        speeds=[2.0, 1.0, 4.0],
        failure_rates=[1e-3, 2e-3, 5e-4],
        bandwidth=2.0,
        link_failure_rate=1e-2,
        max_replication=2,
    )


@pytest.fixture
def mapping(chain, platform):
    return Mapping(
        chain,
        platform,
        [(Interval(0, 1), (0, 1)), (Interval(1, 2), (2,))],
    )


class TestBuildingBlocks:
    def test_comm_reliability(self, platform):
        # o = 2, b = 2 -> duration 1, lambda_link = 1e-2.
        assert comm_log_reliability(platform, 2.0) == pytest.approx(-1e-2)
        assert comm_log_reliability(platform, 0.0) == 0.0
        with pytest.raises(ValueError):
            comm_log_reliability(platform, -1.0)

    def test_interval_reliability_eq2(self, chain, platform):
        # Interval [0,2) on proc 0: W = 10, s = 2, lambda = 1e-3.
        ell = interval_log_reliability(chain, platform, 0, 2, 0)
        assert ell == pytest.approx(-1e-3 * 10.0 / 2.0)

    def test_single_task_is_eq1(self, chain, platform):
        ell = interval_log_reliability(chain, platform, 1, 2, 2)
        assert ell == pytest.approx(-5e-4 * 6.0 / 4.0)


class TestStageReliability:
    def test_first_stage_by_hand(self, chain, platform):
        rc_out = math.exp(-1e-2)  # o=2, b=2, lambda_l=1e-2
        b0 = math.exp(-1e-3 * 4 / 2) * rc_out  # proc 0, rcomm_in = 1
        b1 = math.exp(-2e-3 * 4 / 1) * rc_out
        expected = 1 - (1 - b0) * (1 - b1)
        got = stage_log_reliability(chain, platform, 0, 1, (0, 1))
        assert math.exp(got) == pytest.approx(expected, rel=1e-12)

    def test_last_stage_by_hand(self, chain, platform):
        rc_in = math.exp(-1e-2)
        expected = rc_in * math.exp(-5e-4 * 6 / 4)  # rcomm_out = 1 (o_n = 0)
        got = stage_log_reliability(chain, platform, 1, 2, (2,))
        assert math.exp(got) == pytest.approx(expected, rel=1e-12)

    def test_needs_replicas(self, chain, platform):
        with pytest.raises(ValueError):
            stage_log_reliability(chain, platform, 0, 1, ())


class TestEq9:
    def test_product_of_stages(self, chain, platform, mapping):
        expected = stage_log_reliability(
            chain, platform, 0, 1, (0, 1)
        ) + stage_log_reliability(chain, platform, 1, 2, (2,))
        assert mapping_log_reliability(mapping) == pytest.approx(expected, rel=1e-14)

    def test_replication_improves_reliability(self, chain, platform):
        single = Mapping(chain, platform, [(Interval(0, 2), (0,))])
        double = Mapping(chain, platform, [(Interval(0, 2), (0, 1))])
        assert mapping_log_reliability(double) > mapping_log_reliability(single)

    def test_zero_cost_split_preserves_reliability(self):
        # Splitting at a zero-size communication with single replicas
        # multiplies exp(-l w1) * exp(-l w2) = exp(-l (w1+w2)).
        chain = TaskChain([3.0, 5.0], [0.0, 0.0])
        plat = Platform.homogeneous_platform(2, failure_rate=1e-3, max_replication=1)
        whole = Mapping(chain, plat, [(Interval(0, 2), (0,))])
        split = Mapping(
            chain, plat, [(Interval(0, 1), (0,)), (Interval(1, 2), (1,))]
        )
        assert mapping_log_reliability(whole) == pytest.approx(
            mapping_log_reliability(split), rel=1e-14
        )


class TestCosts:
    def test_expected_cost_eq3_by_hand(self, chain, platform):
        # Interval [0,1): W=4, replicas procs {0 (s=2), 1 (s=1)}.
        r0 = math.exp(-1e-3 * 4 / 2)
        r1 = math.exp(-2e-3 * 4 / 1)
        num = r0 / 2 + (1 - r0) * r1 / 1
        den = 1 - (1 - r0) * (1 - r1)
        assert expected_cost(chain, platform, 0, 1, (0, 1)) == pytest.approx(
            4 * num / den, rel=1e-12
        )

    def test_expected_cost_order_invariant(self, chain, platform):
        a = expected_cost(chain, platform, 0, 1, (0, 1))
        b = expected_cost(chain, platform, 0, 1, (1, 0))
        assert a == pytest.approx(b, rel=1e-14)

    def test_expected_cost_single_replica(self, chain, platform):
        # With one replica, ec = W/s regardless of failure rate.
        assert expected_cost(chain, platform, 1, 2, (2,)) == pytest.approx(1.5)

    def test_expected_between_fastest_and_slowest(self, chain, platform):
        ec = expected_cost(chain, platform, 0, 1, (0, 1))
        assert 4 / 2 <= ec <= 4 / 1

    def test_worst_case_eq4(self, chain, platform):
        assert worst_case_cost(chain, platform, 0, 1, (0, 1)) == 4.0
        assert worst_case_cost(chain, platform, 0, 1, (0,)) == 2.0

    def test_reliable_replicas_make_ec_close_to_fastest(self):
        chain = TaskChain([10.0], [0.0])
        plat = Platform([5.0, 1.0], [1e-9, 1e-9], max_replication=2)
        ec = expected_cost(chain, plat, 0, 1, (0, 1))
        assert ec == pytest.approx(2.0, rel=1e-6)  # fastest almost surely wins

    def test_certain_failure_falls_back_to_worst_case(self):
        chain = TaskChain([10.0], [0.0])
        plat = Platform([5.0, 1.0], [1e9, 1e9], max_replication=2)
        # All replicas fail with probability numerically 1.
        assert expected_cost(chain, plat, 0, 1, (0, 1)) == pytest.approx(10.0)

    def test_empty_replicas_rejected(self, chain, platform):
        with pytest.raises(ValueError):
            expected_cost(chain, platform, 0, 1, ())
        with pytest.raises(ValueError):
            worst_case_cost(chain, platform, 0, 1, ())


class TestMappingEvaluation:
    def test_latency_eq5_eq7(self, chain, platform, mapping):
        ev = evaluate_mapping(mapping)
        ec1 = expected_cost(chain, platform, 0, 1, (0, 1))
        # EL = ec1 + o1/b + ec2 + o2/b, with o2 = 0.
        assert ev.expected_latency == pytest.approx(ec1 + 1.0 + 1.5, rel=1e-12)
        assert ev.worst_case_latency == pytest.approx(4.0 + 1.0 + 1.5)

    def test_period_eq6_eq8(self, chain, platform, mapping):
        ev = evaluate_mapping(mapping)
        ec1 = expected_cost(chain, platform, 0, 1, (0, 1))
        assert ev.expected_period == pytest.approx(max(1.0, ec1, 1.5), rel=1e-12)
        assert ev.worst_case_period == pytest.approx(4.0)

    def test_reliability_matches_eq9(self, mapping):
        ev = evaluate_mapping(mapping)
        assert ev.log_reliability == pytest.approx(
            mapping_log_reliability(mapping), rel=1e-14
        )
        assert 0.0 < ev.reliability < 1.0
        assert ev.failure_probability == pytest.approx(1.0 - ev.reliability, rel=1e-9)

    def test_worst_bounds_expected(self, mapping):
        ev = evaluate_mapping(mapping)
        assert ev.worst_case_latency >= ev.expected_latency
        assert ev.worst_case_period >= ev.expected_period

    def test_homogeneous_expected_equals_worst(self):
        chain = TaskChain([3.0, 7.0], [2.0, 0.0])
        plat = Platform.homogeneous_platform(
            4, failure_rate=1e-8, link_failure_rate=1e-5, max_replication=2
        )
        m = Mapping(chain, plat, [(Interval(0, 1), (0, 1)), (Interval(1, 2), (2, 3))])
        ev = evaluate_mapping(m)
        assert ev.expected_latency == pytest.approx(ev.worst_case_latency, rel=1e-6)
        assert ev.expected_period == pytest.approx(ev.worst_case_period, rel=1e-6)

    def test_meets(self, mapping):
        ev = evaluate_mapping(mapping)
        assert ev.meets(max_period=10.0, max_latency=10.0)
        assert not ev.meets(max_period=3.0)
        assert not ev.meets(max_latency=6.0)
        assert ev.meets(max_period=3.0, worst_case=False)  # EP < 3 < WP
        assert not ev.meets(min_log_reliability=0.0)
        assert ev.meets(min_log_reliability=ev.log_reliability)

    def test_per_interval_vectors(self, mapping):
        ev = evaluate_mapping(mapping)
        assert len(ev.expected_costs) == 2
        assert len(ev.worst_case_costs) == 2
        assert ev.worst_case_costs[0] == 4.0
