"""Tests for the discrete-event simulator and its agreement with Section 4."""

import math

import numpy as np
import pytest

from repro.core import Interval, Mapping, Platform, TaskChain, evaluate_mapping
from repro.simulation import (
    BernoulliFaults,
    Engine,
    NoFaults,
    PipelineSimulator,
    PoissonFaults,
    simulate_mapping,
    validate_against_analytical,
)
from repro.simulation.events import Event, EventQueue


def single_replica_mapping(fail_rate=0.0, link_rate=0.0):
    chain = TaskChain([4.0, 6.0], [2.0, 0.0])
    plat = Platform(
        speeds=[2.0, 1.0],
        failure_rates=[fail_rate, fail_rate],
        bandwidth=1.0,
        link_failure_rate=link_rate,
        max_replication=1,
    )
    return Mapping(chain, plat, [(Interval(0, 1), (0,)), (Interval(1, 2), (1,))])


def replicated_mapping(fail_rate=0.05, link_rate=0.01, speeds=(2.0, 1.0, 3.0, 1.5)):
    chain = TaskChain([4.0, 6.0], [2.0, 0.0])
    plat = Platform(
        speeds=list(speeds),
        failure_rates=[fail_rate] * len(speeds),
        bandwidth=1.0,
        link_failure_rate=link_rate,
        max_replication=2,
    )
    return Mapping(
        chain, plat, [(Interval(0, 1), (0, 1)), (Interval(1, 2), (2, 3))]
    )


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        order = []
        q.push(Event(2.0, lambda: order.append("b")))
        q.push(Event(1.0, lambda: order.append("a")))
        q.pop().action()
        q.pop().action()
        assert order == ["a", "b"]

    def test_priority_then_fifo(self):
        q = EventQueue()
        order = []
        q.push(Event(1.0, lambda: order.append("low"), priority=1))
        q.push(Event(1.0, lambda: order.append("hi"), priority=0))
        q.push(Event(1.0, lambda: order.append("hi2"), priority=0))
        for _ in range(3):
            q.pop().action()
        assert order == ["hi", "hi2", "low"]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(Event(-1.0, lambda: None))

    def test_empty_pop(self):
        with pytest.raises(IndexError):
            EventQueue().pop()
        with pytest.raises(IndexError):
            EventQueue().next_time


class TestEngine:
    def test_clock_advances(self):
        eng = Engine()
        seen = []
        eng.schedule(5.0, lambda: seen.append(eng.now))
        eng.schedule(1.0, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [1.0, 5.0]
        assert eng.processed == 2

    def test_schedule_in_past_rejected(self):
        eng = Engine()
        eng.schedule(1.0, lambda: eng.schedule_at(0.5, lambda: None))
        with pytest.raises(ValueError, match="past"):
            eng.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1.0, lambda: None)

    def test_run_until(self):
        eng = Engine()
        seen = []
        for t in (1.0, 2.0, 3.0):
            eng.schedule(t, lambda t=t: seen.append(t))
        eng.run(until=2.0)
        assert seen == [1.0, 2.0]

    def test_event_budget(self):
        eng = Engine()

        def respawn():
            eng.schedule(1.0, respawn)

        eng.schedule(0.0, respawn)
        with pytest.raises(RuntimeError, match="events"):
            eng.run(max_events=10)


class TestFaultInjectors:
    def test_no_faults(self):
        inj = NoFaults()
        assert inj.operation_succeeds(1e9, 1e9)

    def test_zero_rate_always_succeeds(self):
        inj = BernoulliFaults(rng=0)
        assert all(inj.operation_succeeds(0.0, 5.0) for _ in range(100))

    def test_huge_rate_always_fails(self):
        inj = BernoulliFaults(rng=0)
        assert not any(inj.operation_succeeds(1e9, 1.0) for _ in range(100))

    def test_invalid_args(self):
        for inj in (BernoulliFaults(rng=0), PoissonFaults(rng=0)):
            with pytest.raises(ValueError):
                inj.operation_succeeds(-1.0, 1.0)
            with pytest.raises(ValueError):
                inj.operation_succeeds(1.0, -1.0)

    def test_bernoulli_and_poisson_same_distribution(self):
        """P(success) = exp(-rate * d) for both injectors (Shatz-Wang)."""
        rate, d, n = 0.3, 2.0, 60_000
        expect = math.exp(-rate * d)
        for cls in (BernoulliFaults, PoissonFaults):
            inj = cls(rng=42)
            hits = sum(inj.operation_succeeds(rate, d) for _ in range(n))
            assert hits / n == pytest.approx(expect, abs=0.01)


class TestPipelineTiming:
    def test_no_fault_latency_single_replicas(self):
        """With single replicas and no faults, latency == WL exactly."""
        mapping = single_replica_mapping()
        sim = PipelineSimulator(mapping, faults=NoFaults())
        run = sim.run(n_datasets=5, period=100.0)
        ev = evaluate_mapping(mapping)
        assert run.success_rate == 1.0
        assert np.allclose(run.latencies, ev.worst_case_latency)

    def test_no_fault_latency_replicated_uses_fastest(self):
        """Routers forward the fastest replica: latency == EL as rates -> 0."""
        mapping = replicated_mapping(fail_rate=0.0, link_rate=0.0)
        sim = PipelineSimulator(mapping, faults=NoFaults())
        run = sim.run(n_datasets=5, period=100.0)
        ev = evaluate_mapping(mapping)
        # EL at zero failure rates = sum over stages of W/s_fastest + comm.
        assert np.allclose(run.latencies, ev.expected_latency)

    def test_throughput_matches_injection_when_feasible(self):
        mapping = single_replica_mapping()
        ev = evaluate_mapping(mapping)
        sim = PipelineSimulator(mapping, faults=NoFaults())
        run = sim.run(n_datasets=60, period=ev.worst_case_period)
        assert run.observed_period == pytest.approx(ev.worst_case_period, rel=1e-9)

    def test_queueing_when_injected_too_fast(self):
        """Injecting below the bottleneck period backs the pipeline up:
        completions pace at the bottleneck, not the injection rate."""
        mapping = single_replica_mapping()
        ev = evaluate_mapping(mapping)
        bottleneck = ev.worst_case_period  # = 6.0 (stage 2 on speed 1)
        sim = PipelineSimulator(mapping, faults=NoFaults())
        run = sim.run(n_datasets=80, period=bottleneck / 3)
        assert run.observed_period == pytest.approx(bottleneck, rel=0.05)
        # Later data sets queue: their latency grows.
        lats = run.latencies
        assert lats[-1] > lats[0] * 5

    def test_physical_accounting_adds_second_hop(self):
        mapping = single_replica_mapping()
        analytical = PipelineSimulator(mapping, faults=NoFaults()).run(3, 100.0)
        physical = PipelineSimulator(
            mapping, faults=NoFaults(), accounting="physical"
        ).run(3, 100.0)
        # One interior boundary of size 2 at bandwidth 1: +2 per data set.
        assert np.allclose(physical.latencies, analytical.latencies + 2.0)

    def test_invalid_args(self):
        mapping = single_replica_mapping()
        sim = PipelineSimulator(mapping, faults=NoFaults())
        with pytest.raises(ValueError):
            sim.run(0, 1.0)
        with pytest.raises(ValueError):
            sim.run(1, 0.0)
        with pytest.raises(ValueError):
            PipelineSimulator(mapping, accounting="quantum")


class TestPipelineReliability:
    def test_hot_model_failures_are_per_dataset(self):
        """A replica that fails data set d still serves d+1: with one
        replica per stage and moderate rates, some data sets fail and
        some later ones succeed."""
        mapping = single_replica_mapping(fail_rate=0.08)
        sim = PipelineSimulator(mapping, faults=BernoulliFaults(rng=3))
        run = sim.run(n_datasets=300, period=50.0)
        ok = run.completed
        assert 0 < run.n_completed < 300
        # Find a failure followed by a success.
        idx = np.where(~ok[:-1] & ok[1:])[0]
        assert idx.size > 0

    def test_reliability_matches_eq9_single(self):
        mapping = single_replica_mapping(fail_rate=0.05, link_rate=0.02)
        summary = simulate_mapping(mapping, n_datasets=4000, rng=7, period=50.0)
        assert summary.reliability_consistent

    def test_reliability_matches_eq9_replicated(self):
        mapping = replicated_mapping(fail_rate=0.1, link_rate=0.03)
        summary = simulate_mapping(mapping, n_datasets=4000, rng=12, period=50.0)
        assert summary.reliability_consistent

    def test_stage_losses_accounting(self):
        mapping = single_replica_mapping(fail_rate=0.1)
        sim = PipelineSimulator(mapping, faults=BernoulliFaults(rng=5))
        run = sim.run(n_datasets=500, period=50.0)
        assert sum(run.stage_losses) == 500 - run.n_completed

    def test_poisson_injector_consistent_too(self):
        mapping = replicated_mapping(fail_rate=0.1, link_rate=0.0)
        summary = simulate_mapping(
            mapping, n_datasets=4000, faults=PoissonFaults(rng=13), period=50.0
        )
        assert summary.reliability_consistent

    def test_faults_and_rng_mutually_exclusive(self):
        with pytest.raises(ValueError):
            simulate_mapping(
                single_replica_mapping(), faults=NoFaults(), rng=1
            )


class TestValidation:
    def test_validate_reliable_system(self):
        mapping = replicated_mapping(fail_rate=1e-6, link_rate=1e-6)
        report = validate_against_analytical(mapping, n_datasets=500, rng=2)
        assert report["all_ok"], report

    def test_validate_unreliable_system(self):
        mapping = replicated_mapping(fail_rate=0.15, link_rate=0.05)
        report = validate_against_analytical(mapping, n_datasets=4000, rng=4)
        assert report["reliability_ok"], report

    def test_report_fields(self):
        mapping = single_replica_mapping()
        report = validate_against_analytical(mapping, n_datasets=50, rng=0)
        for key in (
            "analytical_reliability",
            "simulated_reliability",
            "simulated_mean_latency",
            "observed_period",
            "all_ok",
        ):
            assert key in report
