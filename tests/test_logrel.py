"""Unit tests for log-domain reliability arithmetic."""

import math

import numpy as np
import pytest

from repro.util import logrel


class TestFromRate:
    def test_basic(self):
        assert logrel.from_rate(0.1, 2.0) == pytest.approx(-0.2)

    def test_zero_rate_is_perfect(self):
        assert logrel.from_rate(0.0, 100.0) == 0.0

    def test_zero_duration_is_perfect(self):
        assert logrel.from_rate(5.0, 0.0) == 0.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="failure rate"):
            logrel.from_rate(-1.0, 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            logrel.from_rate(1.0, -1.0)


class TestConversions:
    def test_reliability_roundtrip(self):
        ell = -0.3
        assert logrel.from_reliability(logrel.reliability(ell)) == pytest.approx(ell)

    def test_failure_exact_for_tiny(self):
        # 1 - exp(-1e-18) == 1e-18 to first order; plain 1 - exp would give 0.
        assert logrel.failure(-1e-18) == pytest.approx(1e-18, rel=1e-12)

    def test_from_failure_tiny(self):
        assert logrel.from_failure(1e-15) == pytest.approx(-1e-15, rel=1e-9)

    def test_log_failure_branches(self):
        # Both branches of the log1mexp trick.
        assert logrel.log_failure(-1e-9) == pytest.approx(math.log(1e-9), rel=1e-6)
        assert logrel.log_failure(-50.0) == pytest.approx(math.log1p(-math.exp(-50.0)))

    def test_log_failure_perfect_block(self):
        assert logrel.log_failure(0.0) == -math.inf

    def test_from_reliability_bounds(self):
        with pytest.raises(ValueError):
            logrel.from_reliability(1.5)
        with pytest.raises(ValueError):
            logrel.from_reliability(-0.1)
        assert logrel.from_reliability(0.0) == -math.inf
        assert logrel.from_reliability(1.0) == 0.0

    def test_from_failure_bounds(self):
        with pytest.raises(ValueError):
            logrel.from_failure(2.0)
        assert logrel.from_failure(1.0) == -math.inf
        assert logrel.from_failure(0.0) == 0.0


class TestCheck:
    def test_positive_rejected(self):
        with pytest.raises(ValueError, match="<= 0"):
            logrel.check_logrel(0.1)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            logrel.check_logrel(float("nan"))

    def test_neg_inf_allowed(self):
        assert logrel.check_logrel(-math.inf) == -math.inf


class TestSerial:
    def test_matches_product(self):
        rs = [0.9, 0.8, 0.99]
        ell = logrel.serial(math.log(r) for r in rs)
        assert math.exp(ell) == pytest.approx(0.9 * 0.8 * 0.99)

    def test_empty_is_perfect(self):
        assert logrel.serial([]) == 0.0

    def test_rejects_positive(self):
        with pytest.raises(ValueError):
            logrel.serial([0.1])


class TestParallel:
    def test_matches_formula_two_blocks(self):
        r1, r2 = 0.9, 0.7
        expected = 1 - (1 - r1) * (1 - r2)
        ell = logrel.parallel([math.log(r1), math.log(r2)])
        assert math.exp(ell) == pytest.approx(expected)

    def test_empty_has_no_path(self):
        assert logrel.parallel([]) == -math.inf

    def test_perfect_branch_dominates(self):
        assert logrel.parallel([0.0, -5.0]) == 0.0

    def test_all_failed(self):
        assert logrel.parallel([-math.inf, -math.inf]) == -math.inf

    def test_tiny_failures_no_cancellation(self):
        # Two branches with failure 1e-9 each: stage failure 1e-18.
        ell = logrel.from_failure(1e-9)
        stage = logrel.parallel([ell, ell])
        assert logrel.failure(stage) == pytest.approx(1e-18, rel=1e-6)

    def test_commutative(self):
        ells = [-0.5, -1e-9, -3.0]
        assert logrel.parallel(ells) == pytest.approx(
            logrel.parallel(list(reversed(ells))), rel=1e-14
        )


class TestParallelK:
    def test_matches_parallel(self):
        ell = -0.2
        for k in (1, 2, 3, 5):
            assert logrel.parallel_k(ell, k) == pytest.approx(
                logrel.parallel([ell] * k), rel=1e-12
            )

    def test_k1_identity(self):
        assert logrel.parallel_k(-0.7, 1) == -0.7

    def test_monotone_in_k(self):
        ell = -0.4
        vals = [logrel.parallel_k(ell, k) for k in range(1, 6)]
        assert all(b > a for a, b in zip(vals, vals[1:]))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            logrel.parallel_k(-0.1, 0)

    def test_perfect_replica(self):
        assert logrel.parallel_k(0.0, 3) == 0.0

    def test_failed_replica(self):
        assert logrel.parallel_k(-math.inf, 3) == -math.inf

    def test_paper_regime_precision(self):
        # lambda = 1e-8, W = 50: single-replica failure 5e-7; triple
        # replication should give failure 1.25e-19 exactly-ish.
        ell = logrel.from_rate(1e-8, 50.0)
        stage = logrel.parallel_k(ell, 3)
        assert logrel.failure(stage) == pytest.approx(1.25e-19, rel=1e-6)


class TestVectorized:
    def test_parallel_k_many_matches_scalar(self):
        ells = np.array([-0.5, -1e-10, -2.0, 0.0])
        ks = np.array([1, 2, 3, 4])
        out = logrel.parallel_k_many(ells, ks)
        for e, k, o in zip(ells, ks, out):
            assert o == pytest.approx(logrel.parallel_k(float(e), int(k)), rel=1e-12)

    def test_parallel_k_many_broadcast(self):
        out = logrel.parallel_k_many(-0.3, np.arange(1, 5))
        assert out.shape == (4,)
        assert np.all(np.diff(out) > 0)

    def test_parallel_k_many_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            logrel.parallel_k_many(np.array([0.1]), 2)
        with pytest.raises(ValueError):
            logrel.parallel_k_many(np.array([-0.1]), 0)

    def test_serial_many_axis(self):
        ells = np.array([[-0.1, -0.2], [-0.3, -0.4]])
        out = logrel.serial_many(ells, axis=1)
        assert out == pytest.approx([-0.3, -0.7])

    def test_serial_many_rejects_positive(self):
        with pytest.raises(ValueError):
            logrel.serial_many(np.array([0.5]))

    def test_log1mexp_extremes(self):
        out = logrel.log1mexp(np.array([-1e-300, -700.0]))
        assert out[0] < -600  # log(1e-300) ~ -690
        assert out[1] == pytest.approx(0.0, abs=1e-250)
