"""The batched solving layer: kernel-level bit-identity with the
per-instance heuristics, the harness's batch serving and fallback, the
registry's solve_batch capability, and the worker-shard batch path."""

import math

import numpy as np
import pytest

from repro.algorithms import (
    BatchUnsupported,
    batch_bisection_search,
    batch_heuristic_best,
    batch_minimize_latency,
    batch_minimize_period,
    heuristic_best,
    heuristic_solve_batch,
)
from repro.experiments import Method, get_method, run_sweep
from repro.experiments.cache import ResultCache
from repro.experiments.harness import _unit_arrays
from repro.scenarios import generate_ensemble, generate_ensembles, get_scenario

BOUNDS = [(math.inf, math.inf), (600.0, 900.0), (150.0, 400.0)]

#: Unbounded-latency sweep points: the shape the batched dp-period
#: kernel covers (its probe is the Algorithm 2 DP).
PERIOD_BOUNDS = [(math.inf, math.inf), (600.0, math.inf), (150.0, math.inf)]

#: Every builtin scenario, shrunk to equivalence-test size (the full
#: dimensions are benchmark territory; bit-identity does not care).
SHRINK = {
    "section8-hom": {"n_instances": 3},
    "section8-het": {"n_instances": 2},
    "long-chain": {"n_instances": 2, "n_tasks": 30},
    "scaling-stress": {"n_instances": 2, "n_tasks": 20, "p": 8},
    "high-heterogeneity": {"n_instances": 2},
    "unreliable-links": {"n_instances": 3},
    "hot-spare": {"n_instances": 2},
}

#: The method exercised per (objective, homogeneous-platform) cell.
#: None marks a genuinely uncovered cell (no registered method).
OBJECTIVE_METHOD = {
    ("reliability", True): "heuristic",
    ("reliability", False): "heur-l",
    ("period", True): "dp-period",
    ("period", False): "het-period-search",
    ("latency", True): "dp-latency",
    ("latency", False): "het-latency-search",
    ("energy", True): "energy-greedy",
    ("energy", False): "energy-greedy",
}

#: Cells whose kernel serves every unit of a BOUNDS sweep.  dp-period
#: is absent: BOUNDS carries finite latency bounds, which its kernel
#: refuses (reason "latency-bound") — see TestForcedAndFallback.
#: energy has no kernel at all.
FULLY_BATCHED = {
    ("reliability", True),
    ("reliability", False),
    ("period", False),
    ("latency", True),
    ("latency", False),
}


def shrunk_spec(name):
    return get_scenario(name).spec.with_(**SHRINK[name])


def sweep_pair(tmp_path, spec, method, objective, bounds=BOUNDS,
               min_reliability=0.0):
    """The same sweep through the batched and the per-row path, each
    into its own cold cache."""
    sweeps, caches = [], []
    for batch in ("auto", False):
        cache = ResultCache(tmp_path / f"cache-{batch}")
        sweeps.append(run_sweep(
            spec, [method], bounds,
            cache=cache, objective=objective, batch=batch,
            min_reliability=min_reliability,
        ))
        caches.append(cache)
    return sweeps, caches


def cache_keys(cache):
    return {key for key, _ in cache.backend.scan()}


def n_units(sweep):
    n_methods, _, n_instances = sweep.solved.shape
    return n_methods * n_instances


class TestSweepEquivalenceMatrix:
    """run_sweep(batch="auto") is bit-identical to the per-row path for
    every builtin scenario x objective, cache entries included."""

    @pytest.mark.parametrize("scenario", sorted(SHRINK))
    @pytest.mark.parametrize(
        "objective", ["reliability", "period", "latency", "energy"]
    )
    def test_batched_sweep_matches_per_row(self, tmp_path, scenario, objective):
        entry = get_scenario(scenario)
        method_name = OBJECTIVE_METHOD[objective, entry.homogeneous]
        if method_name is None:
            pytest.skip(f"no {objective!r} method for heterogeneous platforms")
        method = get_method(method_name)
        (batched, looped), (bcache, lcache) = sweep_pair(
            tmp_path, shrunk_spec(scenario), method, objective
        )
        assert np.array_equal(batched.solved, looped.solved)
        assert np.array_equal(batched.failure, looped.failure)
        assert np.array_equal(batched.objective_values, looped.objective_values)
        # Both paths write entries under identical keys with identical
        # payloads — a sweep warmed by one path serves the other.
        assert cache_keys(bcache) == cache_keys(lcache) != set()
        assert looped.batch_units == 0
        if (objective, entry.homogeneous) in FULLY_BATCHED:
            assert batched.batch_units == n_units(batched)
        else:
            assert batched.batch_units == 0
        if method_name == "dp-period":
            # The refused cell is attributed, not silent.
            reasons = {e.get("batch_fallback") for e in batched.unit_events}
            assert reasons == {"latency-bound"}

    def test_batch_warmed_cache_serves_per_row_sweep(self, tmp_path):
        spec = shrunk_spec("section8-hom")
        cache = ResultCache(tmp_path / "shared")
        cold = run_sweep(spec, [get_method("heur-p")], BOUNDS, cache=cache)
        assert cold.batch_units == n_units(cold) > 0
        warm_cache = ResultCache(cache.root)
        warm = run_sweep(
            spec, [get_method("heur-p")], BOUNDS,
            cache=warm_cache, batch=False,
        )
        assert warm_cache.hits == n_units(cold) and warm_cache.puts == 0
        assert np.array_equal(cold.failure, warm.failure)

    def test_parallel_workers_use_batch_shards(self, tmp_path):
        spec = shrunk_spec("unreliable-links")
        serial = run_sweep(spec, [get_method("heur-l")], BOUNDS, batch=False)
        forked = run_sweep(spec, [get_method("heur-l")], BOUNDS, jobs=2)
        assert np.array_equal(serial.failure, forked.failure)
        assert np.array_equal(serial.objective_values, forked.objective_values)

    def test_batch_flag_validated(self):
        with pytest.raises(ValueError, match="batch"):
            run_sweep(
                shrunk_spec("section8-hom"), [get_method("heur-l")],
                BOUNDS, batch="yes",
            )


class TestKernelBitIdentity:
    """batch_heuristic_best against the per-row heuristic_best loop."""

    @pytest.mark.parametrize("which", ["heur-l", "heur-p", "both"])
    @pytest.mark.parametrize(
        "scenario",
        ["section8-hom", "unreliable-links", "high-heterogeneity", "hot-spare"],
    )
    def test_matches_per_row_loop(self, scenario, which):
        ensemble = generate_ensemble(shrunk_spec(scenario), seed=11)
        solved, failure, values = batch_heuristic_best(
            ensemble, BOUNDS, which=which
        )
        for i, (chain, platform) in enumerate(ensemble):
            for pt, (P, L) in enumerate(BOUNDS):
                res = heuristic_best(
                    chain, platform, max_period=P, max_latency=L,
                    which=which, selection="feasible-best",
                )
                assert bool(solved[i, pt]) == res.feasible
                assert float(failure[i, pt]) == res.failure_probability
                assert float(values[i, pt]) == res.objective_value("reliability")

    def test_rows_subset(self):
        ensemble = generate_ensemble(shrunk_spec("section8-hom"), seed=3)
        full = batch_heuristic_best(ensemble, BOUNDS)
        part = batch_heuristic_best(ensemble, BOUNDS, rows=[2, 0])
        for whole, sub in zip(full, part):
            assert np.array_equal(sub[0], whole[2])
            assert np.array_equal(sub[1], whole[0])

    def test_empty_rows(self):
        ensemble = generate_ensemble(shrunk_spec("section8-hom"), seed=3)
        solved, failure, values = batch_heuristic_best(ensemble, BOUNDS, rows=[])
        assert solved.shape == failure.shape == values.shape == (0, len(BOUNDS))

    def test_unsupported_shapes_raise(self):
        het = generate_ensemble(shrunk_spec("high-heterogeneity"), seed=5)
        hom = generate_ensemble(shrunk_spec("section8-hom"), seed=5)
        # Heterogeneous rows and reliability floors are covered cells
        # now; only a mismatched objective remains unsupported here.
        solved, _failure, _values = batch_heuristic_best(
            het, BOUNDS, min_reliability=0.5
        )
        assert solved.shape == (len(het), len(BOUNDS))
        with pytest.raises(BatchUnsupported, match="objective"):
            batch_heuristic_best(hom, BOUNDS, objective="period")
        with pytest.raises(ValueError, match="unknown heuristic"):
            batch_heuristic_best(hom, BOUNDS, which="heur-x")
        with pytest.raises(ValueError, match="unknown heuristic"):
            heuristic_solve_batch("heur-x")

    def test_unsupported_reasons_and_messages(self):
        """Snapshot of each kernel's refusal: the machine-readable
        reason class the telemetry counts, and the message text."""
        het = generate_ensemble(shrunk_spec("high-heterogeneity"), seed=5)
        hom = generate_ensemble(shrunk_spec("section8-hom"), seed=5)
        cases = [
            (
                lambda: batch_heuristic_best(hom, BOUNDS, objective="period"),
                "objective",
                "batched heuristics cover objective 'reliability' only, "
                "got 'period'",
            ),
            (
                lambda: batch_minimize_period(hom, BOUNDS),
                "latency-bound",
                "the batched dp-period kernel probes with the Algorithm 2 "
                "DP, which requires an unbounded latency; points with a "
                "finite max_latency take the per-row Pareto-DP probe "
                "instead",
            ),
            (
                lambda: batch_minimize_period(het, PERIOD_BOUNDS),
                "heterogeneous",
                "the batched dp-period kernel requires fully homogeneous "
                "rows (the Section 5 DPs are only optimal there; Section 6 "
                "proves the heterogeneous problem NP-complete)",
            ),
            (
                lambda: batch_minimize_latency(het, BOUNDS),
                "heterogeneous",
                "the batched dp-latency kernel requires fully homogeneous "
                "rows (the Section 5 DPs are only optimal there; Section 6 "
                "proves the heterogeneous problem NP-complete)",
            ),
            (
                lambda: batch_minimize_latency(hom, BOUNDS, objective="period"),
                "objective",
                "the batched dp-latency kernel covers objective 'latency' "
                "only, got 'period'",
            ),
            (
                lambda: get_method("het-period-search").solve_batch(
                    het, BOUNDS, objective="latency"
                ),
                "objective",
                "the batched period-search kernel covers objective "
                "'period' only, got 'latency'",
            ),
            (
                lambda: get_method("het-latency-search").solve_batch(
                    het, BOUNDS, objective="period"
                ),
                "objective",
                "the batched latency-search kernel covers objective "
                "'latency' only, got 'period'",
            ),
        ]
        for call, reason, message in cases:
            with pytest.raises(BatchUnsupported) as exc:
                call()
            assert exc.value.reason == reason
            assert str(exc.value) == message

    def test_scaling_stress_variants(self):
        # Tuple-axis specs expand to differently-shaped ensembles; the
        # kernel must hold on each variant independently.
        spec = get_scenario("scaling-stress").spec.with_(n_instances=2)
        for ensemble in generate_ensembles(spec, seed=7):
            solved, failure, values = batch_heuristic_best(
                ensemble, BOUNDS[:2], which="heur-p"
            )
            for i, (chain, platform) in enumerate(ensemble):
                for pt, (P, L) in enumerate(BOUNDS[:2]):
                    res = heuristic_best(
                        chain, platform, max_period=P, max_latency=L,
                        which="heur-p", selection="feasible-best",
                    )
                    assert float(failure[i, pt]) == res.failure_probability
                    assert float(values[i, pt]) == res.objective_value(
                        "reliability"
                    )


class TestMethodCapability:
    def test_builtin_methods_declare_solve_batch(self):
        for name in (
            "heur-l", "heur-p", "heuristic",
            "dp-period", "dp-latency",
            "het-period-search", "het-latency-search",
        ):
            assert get_method(name).solve_batch is not None
        for name in ("anneal", "heur-l-paper", "ilp", "pareto-dp",
                     "brute-force", "energy-greedy"):
            assert get_method(name).solve_batch is None

    def test_fingerprint_covers_solve_batch(self):
        base = get_method("heur-l")
        stripped = Method(
            name=base.name, solve=base.solve,
            exact=base.exact, homogeneous_only=base.homogeneous_only,
        )
        assert base.fingerprint() != stripped.fingerprint()

    def test_solve_batch_closure_matches_kernel(self):
        ensemble = generate_ensemble(shrunk_spec("section8-hom"), seed=2)
        via_method = get_method("heur-p").solve_batch(ensemble, BOUNDS)
        direct = batch_heuristic_best(ensemble, BOUNDS, which="heur-p")
        for a, b in zip(via_method, direct):
            assert np.array_equal(a, b)


#: (method, objective, bounds, scenario) per converse-objective kernel
#: cell; the search methods run on both platform kinds.
CONVERSE_CELLS = [
    ("dp-period", "period", PERIOD_BOUNDS, "section8-hom"),
    ("dp-latency", "latency", BOUNDS, "section8-hom"),
    ("het-period-search", "period", BOUNDS, "section8-het"),
    ("het-period-search", "period", BOUNDS, "long-chain"),
    ("het-latency-search", "latency", BOUNDS, "high-heterogeneity"),
    ("het-latency-search", "latency", BOUNDS, "section8-hom"),
]


class TestConverseKernels:
    """The dp/search kernels against the per-row path itself —
    _unit_arrays is byte-for-byte what the harness runs per unit, so
    this pins arrays *and* the per-row info (probes/converged)."""

    @pytest.mark.parametrize("method_name,objective,bounds,scenario",
                             CONVERSE_CELLS)
    @pytest.mark.parametrize("floor", [0.0, 0.9])
    def test_kernel_rows_match_unit_arrays(
        self, method_name, objective, bounds, scenario, floor
    ):
        ensemble = generate_ensemble(shrunk_spec(scenario), seed=13)
        method = get_method(method_name)
        out = method.solve_batch(
            ensemble, bounds, objective=objective, min_reliability=floor
        )
        if len(out) == 4:
            solved, failure, values, infos = out
        else:
            solved, failure, values = out
            infos = [None] * len(ensemble)
        for i in range(len(ensemble)):
            u_solved, u_failure, u_values, u_info = _unit_arrays(
                method, ensemble[i], bounds, None, objective, floor
            )
            assert np.array_equal(np.asarray(solved[i], dtype=bool), u_solved)
            assert np.array_equal(np.asarray(failure[i], dtype=float), u_failure)
            assert np.array_equal(np.asarray(values[i], dtype=float), u_values)
            assert infos[i] == u_info

    def test_search_infos_count_probes(self):
        ensemble = generate_ensemble(shrunk_spec("section8-het"), seed=13)
        _solved, _failure, _values, infos = batch_bisection_search(
            ensemble, BOUNDS, criterion="period"
        )
        assert all(info is not None and info["probes"] >= len(BOUNDS)
                   for info in infos)

    def test_rows_subset(self):
        ensemble = generate_ensemble(shrunk_spec("section8-hom"), seed=13)
        full = batch_minimize_period(ensemble, PERIOD_BOUNDS)
        part = batch_minimize_period(ensemble, PERIOD_BOUNDS, rows=[2, 0])
        for whole, sub in zip(full[:3], part[:3]):
            assert np.array_equal(sub[0], whole[2])
            assert np.array_equal(sub[1], whole[0])
        assert part[3] == [full[3][2], full[3][0]]

    def test_empty_rows(self):
        ensemble = generate_ensemble(shrunk_spec("section8-hom"), seed=13)
        solved, failure, values, infos = batch_minimize_period(
            ensemble, PERIOD_BOUNDS, rows=[]
        )
        assert solved.shape == (0, len(PERIOD_BOUNDS)) and infos == []


class TestFloorSweeps:
    """Reliability floors through the batched sweep: batched == per-row
    bit-identity at every floor, infeasible rows included."""

    #: The top floor is chosen so that some (not necessarily all)
    #: units go infeasible on the shrunk scenarios.
    FLOORS = [0.0, 0.9, 1.0 - 1e-12]

    @pytest.mark.parametrize("floor", FLOORS)
    @pytest.mark.parametrize("method_name,objective,bounds,scenario",
                             CONVERSE_CELLS)
    def test_floored_sweep_matches_per_row(
        self, tmp_path, method_name, objective, bounds, scenario, floor
    ):
        method = get_method(method_name)
        (batched, looped), (bcache, lcache) = sweep_pair(
            tmp_path, shrunk_spec(scenario), method, objective,
            bounds=bounds, min_reliability=floor,
        )
        assert np.array_equal(batched.solved, looped.solved)
        assert np.array_equal(batched.failure, looped.failure)
        assert np.array_equal(batched.objective_values, looped.objective_values)
        assert cache_keys(bcache) == cache_keys(lcache) != set()
        assert batched.batch_units == n_units(batched)
        assert looped.batch_units == 0
        if floor == self.FLOORS[-1] and method_name.startswith("dp-"):
            # The hom scenarios cannot clear this floor everywhere; the
            # het ones can (replication pushes failure below 1e-12), so
            # only the DP cells pin the infeasible-row case here.
            assert not batched.solved.all()

    def test_kernel_floor_matches_per_row_heuristics(self):
        # run_sweep rejects floored *reliability* sweeps (the floor is
        # a constraint for the converse objectives), so the floored
        # heuristic cell is pinned at kernel level.
        from repro.util.logrel import from_reliability

        ensemble = generate_ensemble(shrunk_spec("unreliable-links"), seed=13)
        for floor in (0.5, 1.0 - 1e-12):
            solved, failure, values = batch_heuristic_best(
                ensemble, BOUNDS, min_reliability=floor
            )
            for i, (chain, platform) in enumerate(ensemble):
                for pt, (P, L) in enumerate(BOUNDS):
                    res = heuristic_best(
                        chain, platform, max_period=P, max_latency=L,
                        which="both", selection="feasible-best",
                        min_log_reliability=from_reliability(floor),
                    )
                    assert bool(solved[i, pt]) == res.feasible
                    assert float(failure[i, pt]) == res.failure_probability
                    assert float(values[i, pt]) == res.objective_value(
                        "reliability"
                    )


class TestForcedAndFallback:
    """batch=True demands the kernels; batch="auto" falls back with an
    attributed reason."""

    def test_forced_batch_raises_on_refused_cell(self):
        with pytest.raises(ValueError, match="latency-bound") as exc:
            run_sweep(
                shrunk_spec("section8-hom"), [get_method("dp-period")],
                BOUNDS, objective="period", batch=True,
            )
        assert "dp-period" in str(exc.value)
        assert "batch='auto'" in str(exc.value)

    def test_forced_batch_passes_on_covered_cell(self):
        sweep = run_sweep(
            shrunk_spec("section8-hom"), [get_method("dp-period")],
            PERIOD_BOUNDS, objective="period", batch=True,
        )
        assert sweep.batch_units == n_units(sweep)

    def test_forced_batch_leaves_kernel_free_methods_alone(self):
        sweep = run_sweep(
            shrunk_spec("section8-hom"), [get_method("heur-l-paper")],
            BOUNDS, batch=True,
        )
        assert sweep.batch_units == 0
        assert all("batch_fallback" not in e for e in sweep.unit_events)

    def test_auto_fallback_attributes_reason(self):
        sweep = run_sweep(
            shrunk_spec("section8-hom"), [get_method("dp-period")],
            BOUNDS, objective="period", batch="auto",
        )
        assert sweep.batch_units == 0
        for event in sweep.unit_events:
            assert event["batch_fallback"] == "latency-bound"
            assert event["source"] == "parent"
