"""The batched solving layer: kernel-level bit-identity with the
per-instance heuristics, the harness's batch serving and fallback, the
registry's solve_batch capability, and the worker-shard batch path."""

import math

import numpy as np
import pytest

from repro.algorithms import (
    BatchUnsupported,
    batch_heuristic_best,
    heuristic_best,
    heuristic_solve_batch,
)
from repro.experiments import Method, get_method, run_sweep
from repro.experiments.cache import ResultCache
from repro.scenarios import generate_ensemble, generate_ensembles, get_scenario

BOUNDS = [(math.inf, math.inf), (600.0, 900.0), (150.0, 400.0)]

#: Every builtin scenario, shrunk to equivalence-test size (the full
#: dimensions are benchmark territory; bit-identity does not care).
SHRINK = {
    "section8-hom": {"n_instances": 3},
    "section8-het": {"n_instances": 2},
    "long-chain": {"n_instances": 2, "n_tasks": 30},
    "scaling-stress": {"n_instances": 2, "n_tasks": 20, "p": 8},
    "high-heterogeneity": {"n_instances": 2},
    "unreliable-links": {"n_instances": 3},
    "hot-spare": {"n_instances": 2},
}

#: The method exercised per (objective, homogeneous-platform) cell.
#: None marks a genuinely uncovered cell (no registered method).
OBJECTIVE_METHOD = {
    ("reliability", True): "heuristic",
    ("reliability", False): "heur-l",
    ("period", True): "dp-period",
    ("period", False): "het-period-search",
    ("latency", True): "dp-latency",
    ("latency", False): None,
    ("energy", True): "energy-greedy",
    ("energy", False): "energy-greedy",
}


def shrunk_spec(name):
    return get_scenario(name).spec.with_(**SHRINK[name])


def sweep_pair(tmp_path, spec, method, objective):
    """The same sweep through the batched and the per-row path, each
    into its own cold cache."""
    sweeps, caches = [], []
    for batch in ("auto", False):
        cache = ResultCache(tmp_path / f"cache-{batch}")
        sweeps.append(run_sweep(
            spec, [method], BOUNDS,
            cache=cache, objective=objective, batch=batch,
        ))
        caches.append(cache)
    return sweeps, caches


def cache_keys(cache):
    return {key for key, _ in cache.backend.scan()}


def n_units(sweep):
    n_methods, _, n_instances = sweep.solved.shape
    return n_methods * n_instances


class TestSweepEquivalenceMatrix:
    """run_sweep(batch="auto") is bit-identical to the per-row path for
    every builtin scenario x objective, cache entries included."""

    @pytest.mark.parametrize("scenario", sorted(SHRINK))
    @pytest.mark.parametrize(
        "objective", ["reliability", "period", "latency", "energy"]
    )
    def test_batched_sweep_matches_per_row(self, tmp_path, scenario, objective):
        entry = get_scenario(scenario)
        method_name = OBJECTIVE_METHOD[objective, entry.homogeneous]
        if method_name is None:
            pytest.skip(f"no {objective!r} method for heterogeneous platforms")
        method = get_method(method_name)
        (batched, looped), (bcache, lcache) = sweep_pair(
            tmp_path, shrunk_spec(scenario), method, objective
        )
        assert np.array_equal(batched.solved, looped.solved)
        assert np.array_equal(batched.failure, looped.failure)
        assert np.array_equal(batched.objective_values, looped.objective_values)
        # Both paths write entries under identical keys with identical
        # payloads — a sweep warmed by one path serves the other.
        assert cache_keys(bcache) == cache_keys(lcache) != set()
        assert looped.batch_units == 0
        if (
            method.solve_batch is not None
            and entry.homogeneous
            and objective == "reliability"
        ):
            assert batched.batch_units == n_units(batched)
        else:
            assert batched.batch_units == 0

    def test_batch_warmed_cache_serves_per_row_sweep(self, tmp_path):
        spec = shrunk_spec("section8-hom")
        cache = ResultCache(tmp_path / "shared")
        cold = run_sweep(spec, [get_method("heur-p")], BOUNDS, cache=cache)
        assert cold.batch_units == n_units(cold) > 0
        warm_cache = ResultCache(cache.root)
        warm = run_sweep(
            spec, [get_method("heur-p")], BOUNDS,
            cache=warm_cache, batch=False,
        )
        assert warm_cache.hits == n_units(cold) and warm_cache.puts == 0
        assert np.array_equal(cold.failure, warm.failure)

    def test_parallel_workers_use_batch_shards(self, tmp_path):
        spec = shrunk_spec("unreliable-links")
        serial = run_sweep(spec, [get_method("heur-l")], BOUNDS, batch=False)
        forked = run_sweep(spec, [get_method("heur-l")], BOUNDS, jobs=2)
        assert np.array_equal(serial.failure, forked.failure)
        assert np.array_equal(serial.objective_values, forked.objective_values)

    def test_batch_flag_validated(self):
        with pytest.raises(ValueError, match="batch"):
            run_sweep(
                shrunk_spec("section8-hom"), [get_method("heur-l")],
                BOUNDS, batch="yes",
            )


class TestKernelBitIdentity:
    """batch_heuristic_best against the per-row heuristic_best loop."""

    @pytest.mark.parametrize("which", ["heur-l", "heur-p", "both"])
    @pytest.mark.parametrize("scenario", ["section8-hom", "unreliable-links"])
    def test_matches_per_row_loop(self, scenario, which):
        ensemble = generate_ensemble(shrunk_spec(scenario), seed=11)
        solved, failure, values = batch_heuristic_best(
            ensemble, BOUNDS, which=which
        )
        for i, (chain, platform) in enumerate(ensemble):
            for pt, (P, L) in enumerate(BOUNDS):
                res = heuristic_best(
                    chain, platform, max_period=P, max_latency=L,
                    which=which, selection="feasible-best",
                )
                assert bool(solved[i, pt]) == res.feasible
                assert float(failure[i, pt]) == res.failure_probability
                assert float(values[i, pt]) == res.objective_value("reliability")

    def test_rows_subset(self):
        ensemble = generate_ensemble(shrunk_spec("section8-hom"), seed=3)
        full = batch_heuristic_best(ensemble, BOUNDS)
        part = batch_heuristic_best(ensemble, BOUNDS, rows=[2, 0])
        for whole, sub in zip(full, part):
            assert np.array_equal(sub[0], whole[2])
            assert np.array_equal(sub[1], whole[0])

    def test_empty_rows(self):
        ensemble = generate_ensemble(shrunk_spec("section8-hom"), seed=3)
        solved, failure, values = batch_heuristic_best(ensemble, BOUNDS, rows=[])
        assert solved.shape == failure.shape == values.shape == (0, len(BOUNDS))

    def test_unsupported_shapes_raise(self):
        het = generate_ensemble(shrunk_spec("high-heterogeneity"), seed=5)
        hom = generate_ensemble(shrunk_spec("section8-hom"), seed=5)
        with pytest.raises(BatchUnsupported, match="homogeneous"):
            batch_heuristic_best(het, BOUNDS)
        with pytest.raises(BatchUnsupported, match="objective"):
            batch_heuristic_best(hom, BOUNDS, objective="period")
        with pytest.raises(BatchUnsupported, match="floor"):
            batch_heuristic_best(hom, BOUNDS, min_reliability=0.5)
        with pytest.raises(ValueError, match="unknown heuristic"):
            batch_heuristic_best(hom, BOUNDS, which="heur-x")
        with pytest.raises(ValueError, match="unknown heuristic"):
            heuristic_solve_batch("heur-x")

    def test_scaling_stress_variants(self):
        # Tuple-axis specs expand to differently-shaped ensembles; the
        # kernel must hold on each variant independently.
        spec = get_scenario("scaling-stress").spec.with_(n_instances=2)
        for ensemble in generate_ensembles(spec, seed=7):
            solved, failure, values = batch_heuristic_best(
                ensemble, BOUNDS[:2], which="heur-p"
            )
            for i, (chain, platform) in enumerate(ensemble):
                for pt, (P, L) in enumerate(BOUNDS[:2]):
                    res = heuristic_best(
                        chain, platform, max_period=P, max_latency=L,
                        which="heur-p", selection="feasible-best",
                    )
                    assert float(failure[i, pt]) == res.failure_probability
                    assert float(values[i, pt]) == res.objective_value(
                        "reliability"
                    )


class TestMethodCapability:
    def test_builtin_heuristics_declare_solve_batch(self):
        for name in ("heur-l", "heur-p", "heuristic"):
            assert get_method(name).solve_batch is not None
        for name in ("dp-period", "anneal", "heur-l-paper"):
            assert get_method(name).solve_batch is None

    def test_fingerprint_covers_solve_batch(self):
        base = get_method("heur-l")
        stripped = Method(
            name=base.name, solve=base.solve,
            exact=base.exact, homogeneous_only=base.homogeneous_only,
        )
        assert base.fingerprint() != stripped.fingerprint()

    def test_solve_batch_closure_matches_kernel(self):
        ensemble = generate_ensemble(shrunk_spec("section8-hom"), seed=2)
        via_method = get_method("heur-p").solve_batch(ensemble, BOUNDS)
        direct = batch_heuristic_best(ensemble, BOUNDS, which="heur-p")
        for a, b in zip(via_method, direct):
            assert np.array_equal(a, b)
