"""The scenario-aware planner: capability gating, skip reasons,
ordering, error parity with the registry, and plan records."""

import pytest

from repro.experiments import METHODS, UnknownMethodError, get_method, register_method
from repro.scenarios import (
    UnknownScenarioError,
    get_scenario,
    scenario_hash,
)
from repro.solve import Plan, Planner, plan_methods


@pytest.fixture
def scratch_registry():
    before = dict(METHODS)
    yield METHODS
    METHODS.clear()
    METHODS.update(before)


def skip_reasons(plan: Plan) -> dict:
    return {s.method: s.reason for s in plan.skipped}


class TestCapabilityGating:
    def test_hom_only_methods_excluded_for_het_scenarios(self):
        """The headline gate: Section 5 exact solvers never run on
        heterogeneous workloads."""
        plan = plan_methods("high-heterogeneity")
        for name in ("ilp", "pareto-dp"):
            assert name not in plan.selected
            assert "requires homogeneous platforms" in skip_reasons(plan)[name]
        # And the gate is hard: explicitly requesting them still skips.
        explicit = plan_methods("high-heterogeneity", methods=["pareto-dp", "heur-l"])
        assert explicit.selected == ("heur-l",)
        assert "requires homogeneous platforms" in skip_reasons(explicit)["pareto-dp"]

    def test_hom_scenario_keeps_cheapest_exact(self):
        plan = plan_methods("section8-hom")
        assert plan.selected == ("pareto-dp", "heur-l", "heur-p")
        assert "redundant exact solver" in skip_reasons(plan)["ilp"]

    def test_size_threshold_drops_exact_methods(self):
        """scaling-stress (80 tasks x 32 procs at the top of its axes)
        is past the exact threshold — the ROADMAP's motivating case."""
        plan = plan_methods("scaling-stress")
        assert plan.selected == ("heur-l", "heur-p")
        assert "exceeds the exact-method threshold" in skip_reasons(plan)["pareto-dp"]
        # A raised threshold admits them again.
        roomy = Planner(max_exact_tasks=100, max_exact_procs=64).plan("scaling-stress")
        assert "pareto-dp" in roomy.selected

    def test_method_max_tasks_ceiling(self, scratch_registry):
        register_method("capped", max_tasks=8)(lambda problem: None)
        plan = plan_methods("section8-hom", methods=["capped"])  # 15 tasks
        assert plan.selected == ()
        assert "declared limit of 8 tasks" in skip_reasons(plan)["capped"]
        small = plan_methods(
            get_scenario("section8-hom").spec.with_(name="small", n_tasks=6),
            methods=["capped"],
        )
        assert small.selected == ("capped",)

    def test_paired_tag_gating(self):
        hom = plan_methods("section8-hom")
        het_paired = plan_methods("section8-het")
        assert "heur-l-paper" not in hom.selected
        assert "heur-l-paper" in het_paired.selected and "heur-p-paper" in het_paired.selected

    def test_stochastic_opt_in(self):
        default = plan_methods("section8-hom")
        assert "anneal" not in default.selected
        assert "stochastic" in skip_reasons(default)["anneal"]
        opted = Planner(include_stochastic=True).plan("section8-hom")
        assert "anneal" in opted.selected

    def test_manual_methods_need_explicit_request(self):
        auto = plan_methods("section8-hom")
        assert "heuristic" not in auto.selected
        assert "manual-only" in skip_reasons(auto)["heuristic"]
        explicit = plan_methods("section8-hom", methods=["heuristic"])
        assert explicit.selected == ("heuristic",)


class TestOrderingAndRecords:
    def test_expensive_first_order(self, scratch_registry):
        register_method("pricey", cost_hint=50.0)(lambda problem: None)
        plan = plan_methods("section8-hom", methods=["heur-l", "pricey", "pareto-dp"])
        assert plan.selected == ("pricey", "pareto-dp", "heur-l")

    def test_plan_methods_resolve_against_registry(self):
        plan = plan_methods("section8-hom")
        methods = plan.methods()
        assert [m.name for m in methods] == list(plan.selected)
        assert methods[0] is get_method(plan.selected[0])

    def test_spec_hash_ties_plan_to_workload(self):
        plan = plan_methods("section8-hom")
        assert plan.spec_hash == scenario_hash(get_scenario("section8-hom").spec)

    def test_describe_is_json_ready(self):
        import json

        record = plan_methods("section8-het").describe()
        assert json.loads(json.dumps(record)) == record
        assert record["scenario"] == "section8-het"
        assert set(record) == {
            "scenario", "spec_hash", "objective", "selected", "batched",
            "skipped",
        }
        assert record["objective"] == "reliability"
        assert all(set(s) == {"method", "reason"} for s in record["skipped"])
        # Every batched-capable selected method is marked, nothing else.
        assert record["batched"] == [
            name for name in record["selected"]
            if get_method(name).solve_batch is not None
        ]

    def test_summary_mentions_every_method(self):
        text = plan_methods("section8-hom").summary()
        for name in METHODS:
            assert name in text


class TestErrors:
    def test_unknown_method_matches_registry_message(self):
        with pytest.raises(UnknownMethodError) as via_registry:
            get_method("no-such-method")
        with pytest.raises(UnknownMethodError) as via_planner:
            plan_methods("section8-hom", methods=["no-such-method"])
        assert str(via_planner.value) == str(via_registry.value)

    def test_unknown_scenario_propagates(self):
        with pytest.raises(UnknownScenarioError, match="no-such-workload"):
            plan_methods("no-such-workload")

    def test_bare_spec_accepted(self):
        spec = get_scenario("section8-hom").spec.with_(name="anon-copy")
        plan = plan_methods(spec)
        assert plan.scenario == "anon-copy"
        # Same generative content, same hash, same selection.
        assert plan.spec_hash == plan_methods("section8-hom").spec_hash
        assert plan.selected == plan_methods("section8-hom").selected
