"""Tests for Heur-L (Algorithm 3), Heur-P (Algorithm 4), and the full
two-step heuristic pipeline of Section 7."""


import numpy as np
import pytest

from repro.algorithms import (
    heur_l_intervals,
    heur_p_intervals,
    heuristic_best,
    heuristic_candidates,
)
from repro.core import Platform, TaskChain, random_chain, random_platform
from repro.core.interval import compositions, validate_partition


def hom_platform(p, K):
    return Platform.homogeneous_platform(
        p, failure_rate=1e-8, link_failure_rate=1e-5, max_replication=K
    )


class TestHeurL:
    def test_cuts_at_smallest_comms(self):
        chain = TaskChain([1, 1, 1, 1, 1], [9.0, 1.0, 5.0, 2.0, 0.0])
        part = heur_l_intervals(chain, 3)
        # Smallest comm costs among tasks 1..4 are o=1 (task idx 1) and
        # o=2 (task idx 3): cuts after them.
        assert [iv.stop for iv in part] == [2, 4, 5]

    def test_single_interval(self):
        chain = random_chain(6, rng=0)
        part = heur_l_intervals(chain, 1)
        assert len(part) == 1 and part[0].stop == 6

    def test_max_intervals(self):
        chain = random_chain(6, rng=0)
        part = heur_l_intervals(chain, 6)
        assert len(part) == 6

    def test_tie_broken_by_position(self):
        chain = TaskChain([1, 1, 1, 1], [3.0, 3.0, 3.0, 0.0])
        part = heur_l_intervals(chain, 2)
        assert [iv.stop for iv in part] == [1, 4]  # first tie wins

    def test_invalid_m(self):
        chain = random_chain(4, rng=0)
        with pytest.raises(ValueError):
            heur_l_intervals(chain, 0)
        with pytest.raises(ValueError):
            heur_l_intervals(chain, 5)

    @pytest.mark.parametrize("seed", range(6))
    def test_minimizes_comm_sum_over_divisions(self, seed):
        """Among all m-interval divisions, Heur-L's has the smallest
        total cut-communication cost (= smallest latency on hom)."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 8))
        chain = random_chain(n, rng)
        m = int(rng.integers(2, n + 1))
        part = heur_l_intervals(chain, m)
        cost = sum(chain.output_of(iv.stop) for iv in part[:-1])
        best = min(
            sum(chain.output_of(iv.stop) for iv in cand[:-1])
            for cand in compositions(n, m)
        )
        assert cost == pytest.approx(best)


class TestHeurP:
    def test_balances_work(self):
        chain = TaskChain([4, 4, 4, 4], [1.0, 1.0, 1.0, 0.0])
        part = heur_p_intervals(chain, 2)
        assert [iv.stop for iv in part] == [2, 4]

    def test_avoids_expensive_cut(self):
        # Cutting after task 0 exposes the o = 10 communication (period
        # 10); cutting after task 1 exposes only o = 1 (period 4, from
        # the [0,2) interval's work).  The DP must pick the latter.
        chain = TaskChain([2, 2, 2], [10.0, 1.0, 0.0])
        part = heur_p_intervals(chain, 2)
        assert [iv.stop for iv in part] == [2, 3]
        period = max(
            max(chain.work_between(iv.start, iv.stop), chain.output_of(iv.stop))
            for iv in part
        )
        assert period == pytest.approx(4.0)

    def test_invalid_args(self):
        chain = random_chain(4, rng=0)
        with pytest.raises(ValueError):
            heur_p_intervals(chain, 0)
        with pytest.raises(ValueError):
            heur_p_intervals(chain, 1, reference_speed=0.0)

    @pytest.mark.parametrize("seed", range(6))
    def test_optimal_period_among_divisions(self, seed):
        """Heur-P's m-interval division achieves the optimal m-interval
        period (its DP is exact for the division step)."""
        rng = np.random.default_rng(40 + seed)
        n = int(rng.integers(3, 8))
        chain = random_chain(n, rng)
        m = int(rng.integers(1, n + 1))
        part = heur_p_intervals(chain, m)
        validate_partition(n, part)
        assert len(part) == m

        def period_of(cand):
            return max(
                max(chain.work_between(iv.start, iv.stop), chain.output_of(iv.stop))
                for iv in cand
            )

        best = min(period_of(c) for c in compositions(n, m))
        assert period_of(part) == pytest.approx(best)

    def test_respects_reference_speed_and_bandwidth(self):
        chain = TaskChain([8, 8], [4.0, 0.0])
        # With b = 0.5 the comm time is 8, matching one interval's work
        # at speed 1; with default b = 1 it is 4.
        part_slow_link = heur_p_intervals(chain, 2, bandwidth=0.5)
        validate_partition(2, part_slow_link)


class TestHeuristicPipeline:
    def test_candidates_one_per_interval_count(self):
        chain = random_chain(6, rng=2)
        plat = hom_platform(4, 2)
        cands = heuristic_candidates(chain, plat, "heur-p")
        assert [c.m for c in cands] == [1, 2, 3, 4]  # min(n, p) = 4

    def test_infeasible_candidates_flagged(self):
        chain = TaskChain([10.0, 10.0], [1.0, 0.0])
        plat = hom_platform(3, 2)
        cands = heuristic_candidates(chain, plat, "heur-p", max_period=5.0)
        assert all(not c.feasible for c in cands)

    def test_unknown_heuristic(self):
        chain = random_chain(3, rng=0)
        with pytest.raises(ValueError):
            heuristic_candidates(chain, hom_platform(2, 1), "heur-x")

    def test_best_picks_highest_reliability(self):
        chain = random_chain(8, rng=4)
        plat = hom_platform(6, 3)
        res = heuristic_best(chain, plat, max_period=500.0, max_latency=1500.0)
        assert res.feasible
        # It must beat or match each individual feasible candidate.
        for name in ("heur-l", "heur-p"):
            for cand in heuristic_candidates(
                chain, plat, name, max_period=500.0, max_latency=1500.0
            ):
                if cand.feasible:
                    assert res.log_reliability >= cand.evaluation.log_reliability - 1e-18

    def test_best_respects_bounds(self):
        chain = random_chain(8, rng=5)
        plat = hom_platform(6, 3)
        res = heuristic_best(chain, plat, max_period=200.0, max_latency=800.0)
        if res.feasible:
            assert res.evaluation.worst_case_period <= 200.0 + 1e-9
            assert res.evaluation.worst_case_latency <= 800.0 + 1e-9

    def test_infeasible_reported(self):
        chain = TaskChain([100.0], [0.0])
        plat = hom_platform(2, 2)
        res = heuristic_best(chain, plat, max_period=1.0)
        assert not res.feasible
        assert res.mapping is None

    def test_single_heuristic_selection(self):
        chain = random_chain(6, rng=6)
        plat = hom_platform(4, 2)
        res_l = heuristic_best(chain, plat, which="heur-l")
        res_p = heuristic_best(chain, plat, which="heur-p")
        both = heuristic_best(chain, plat, which="both")
        assert both.log_reliability >= max(res_l.log_reliability, res_p.log_reliability) - 1e-18

    def test_heterogeneous_pipeline_runs(self):
        rng = np.random.default_rng(8)
        chain = random_chain(10, rng)
        plat = random_platform(6, rng)
        res = heuristic_best(chain, plat, max_period=50.0, max_latency=200.0)
        if res.feasible:
            ev = res.evaluation
            assert ev.worst_case_period <= 50.0 + 1e-9
            assert ev.worst_case_latency <= 200.0 + 1e-9

    def test_het_allocation_failure_handled(self):
        # Slow single processor cannot host anything within the period.
        chain = TaskChain([100.0, 100.0], [1.0, 0.0])
        plat = Platform([1.0, 1.0], [1e-8, 1e-8], max_replication=1)
        res = heuristic_best(chain, plat, max_period=10.0)
        assert not res.feasible

    def test_expected_case_bounds_mode(self):
        rng = np.random.default_rng(9)
        chain = random_chain(8, rng)
        plat = random_platform(6, rng)
        # Expected-case bounds are never harder to meet than worst-case.
        wc = heuristic_best(chain, plat, max_period=60.0, max_latency=300.0)
        ec = heuristic_best(
            chain, plat, max_period=60.0, max_latency=300.0, worst_case=False
        )
        assert (not wc.feasible) or ec.feasible
