"""The unified Problem/solve() API: Problem semantics, the facade's
error parity with the registry, and the deprecation shims for the old
positional (chain, platform, max_period, max_latency) convention."""

import math
import warnings

import pytest

from repro.core import Platform, TaskChain
from repro.experiments import (
    METHODS,
    UnknownMethodError,
    get_method,
    register_method,
)
from repro.io import content_hash, dumps, loads
from repro.solve import Problem, auto_method_name, problem_hash, solve


@pytest.fixture
def chain():
    return TaskChain([4.0, 6.0, 2.0], [2.0, 1.0, 0.0])


@pytest.fixture
def hom():
    return Platform.homogeneous_platform(
        4, failure_rate=1e-8, link_failure_rate=1e-5, max_replication=2
    )


@pytest.fixture
def het():
    return Platform(
        speeds=[2.0, 1.0, 3.0],
        failure_rates=[1e-6, 2e-6, 5e-7],
        bandwidth=2.0,
        link_failure_rate=1e-5,
        max_replication=2,
    )


@pytest.fixture
def problem(chain, hom):
    return Problem(chain, hom, max_period=50.0, max_latency=100.0)


class TestProblem:
    def test_frozen_and_validated(self, chain, hom):
        p = Problem(chain, hom, 50.0, 100.0)
        with pytest.raises(Exception):  # FrozenInstanceError
            p.max_period = 10.0
        with pytest.raises(TypeError, match="chain must be a TaskChain"):
            Problem("nope", hom)
        with pytest.raises(TypeError, match="platform must be a Platform"):
            Problem(chain, "nope")
        with pytest.raises(ValueError, match="max_period"):
            Problem(chain, hom, max_period=0.0)
        with pytest.raises(ValueError, match="max_latency"):
            Problem(chain, hom, max_latency=-1.0)
        with pytest.raises(ValueError, match="objective"):
            Problem(chain, hom, objective="speed")

    def test_defaults_unbounded(self, chain, hom):
        p = Problem(chain, hom)
        assert p.max_period == math.inf and p.max_latency == math.inf
        assert not p.bounded
        assert p.homogeneous and p.n_tasks == 3 and p.p == 4

    def test_with_bounds(self, problem):
        tighter = problem.with_bounds(max_period=25.0)
        assert tighter.max_period == 25.0
        assert tighter.max_latency == problem.max_latency  # kept
        assert tighter.chain is problem.chain  # shared, not copied
        lifted = problem.unbounded()
        assert not lifted.bounded

    def test_equality_and_hash(self, chain, hom, problem):
        twin = Problem(chain, hom, max_period=50.0, max_latency=100.0)
        assert twin == problem
        assert hash(twin) == hash(problem)
        assert {twin, problem} == {problem}
        assert problem != problem.with_bounds(max_period=49.0)

    def test_content_hash_stable_and_sensitive(self, chain, hom, problem):
        assert problem.content_hash() == problem.content_hash()  # cached
        assert problem.content_hash() == problem_hash(problem)
        # content_hash(problem) (the io entry point) agrees too.
        assert content_hash(problem) == problem.content_hash()
        changed = {
            "bounds": problem.with_bounds(max_period=51.0),
            "chain": Problem(TaskChain([4.0, 6.0, 3.0], [2.0, 1.0, 0.0]), hom, 50.0, 100.0),
        }
        for what, other in changed.items():
            assert other.content_hash() != problem.content_hash(), what

    def test_io_roundtrip(self, problem):
        assert loads(dumps(problem)) == problem

    def test_io_roundtrip_unbounded(self, chain, hom):
        """Infinite bounds survive the JSON codec (encoded as 'inf')."""
        p = Problem(chain, hom)
        text = dumps(p)
        assert '"inf"' in text
        assert loads(text) == p

    def test_repr_mentions_shape(self, problem):
        assert "3 tasks on 4 procs" in repr(problem)
        assert "unbounded" in repr(problem.unbounded())


class TestFacade:
    def test_auto_on_homogeneous_is_exact(self, problem):
        assert auto_method_name(problem) == "pareto-dp"
        result = solve(problem)
        assert result.feasible
        exact = solve(problem, method="pareto-dp")
        assert result.log_reliability == exact.log_reliability

    def test_auto_on_heterogeneous_is_heuristic(self, chain, het):
        p = Problem(chain, het)
        assert auto_method_name(p) == "heuristic"
        assert solve(p).feasible

    def test_explicit_method_object(self, problem):
        result = solve(problem, method=get_method("heur-l"))
        assert result.feasible

    def test_unknown_method_matches_registry_message(self, problem):
        """solve() must raise the registry's exact error, not its own."""
        with pytest.raises(UnknownMethodError) as via_registry:
            get_method("no-such-method")
        with pytest.raises(UnknownMethodError) as via_facade:
            solve(problem, method="no-such-method")
        assert str(via_facade.value) == str(via_registry.value)

    def test_hom_only_method_refuses_het_problem(self, chain, het):
        with pytest.raises(ValueError, match="requires homogeneous platforms"):
            solve(Problem(chain, het), method="pareto-dp")

    def test_max_tasks_gate(self, hom, scratch_registry):
        capped = register_method("capped-method", max_tasks=8)(
            lambda problem: solve(problem, method="heur-l")
        )
        big = TaskChain([1.0] * 12, [1.0] * 11 + [0.0])
        with pytest.raises(ValueError, match="at most 8 tasks"):
            solve(Problem(big, hom), method="capped-method")
        small = TaskChain([1.0] * 3, [1.0, 1.0, 0.0])
        assert solve(Problem(small, hom), method=capped).feasible

    def test_brute_force_governed_by_its_own_budget(self, hom):
        """brute-force has no task-count cap: its search-space budget is
        the real limit, so budget-admissible sizes keep working."""
        chain = TaskChain([1.0] * 9, [1.0] * 8 + [0.0])
        small = Platform.homogeneous_platform(
            2, failure_rate=1e-8, link_failure_rate=1e-5, max_replication=1
        )
        assert solve(Problem(chain, small), method="brute-force").feasible
        with pytest.raises(ValueError, match="exceeds budget"):
            solve(Problem(TaskChain([1.0] * 30, [1.0] * 29 + [0.0]), hom),
                  method="brute-force")

    def test_rejects_bare_tuples(self, chain, hom):
        with pytest.raises(TypeError, match="repro.solve.Problem"):
            solve((chain, hom, 50.0, 100.0))

    def test_seed_forwarded_to_stochastic(self, problem):
        a = solve(problem, method="anneal", seed=7)
        b = solve(problem, method="anneal", seed=7)
        assert a.log_reliability == b.log_reliability

    def test_crosscheck_methods_agree(self, problem):
        """The facade reaches every exact backend (ilp, ilp-bb,
        brute-force) and they agree on the optimum."""
        values = [
            solve(problem, method=name).log_reliability
            for name in ("pareto-dp", "ilp", "ilp-bb", "brute-force")
        ]
        assert max(values) - min(values) <= 1e-9 * max(1.0, abs(values[0]))


@pytest.fixture
def scratch_registry():
    before = dict(METHODS)
    yield METHODS
    METHODS.clear()
    METHODS.update(before)


class TestDeprecationShims:
    """The old positional convention keeps working — loudly."""

    def test_positional_call_warns_and_matches(self, chain, hom, problem):
        method = get_method("heur-l")
        canonical = method.solve_problem(problem)
        with pytest.warns(DeprecationWarning, match=r"positional \(chain, platform"):
            legacy = method.solve(chain, hom, 50.0, 100.0)
        assert legacy.log_reliability == canonical.log_reliability
        with pytest.warns(DeprecationWarning, match="positional"):
            called = method(chain, hom, 50.0, 100.0)
        assert called.log_reliability == canonical.log_reliability

    def test_problem_call_does_not_warn(self, problem):
        method = get_method("heur-l")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            method.solve(problem)
            method(problem)
            method.solve_problem(problem)

    def test_legacy_registration_warns_then_solves(self, scratch_registry, problem):
        with pytest.warns(DeprecationWarning, match="deprecated positional"):

            @register_method("legacy-style")
            def old(chain, platform, P, L):
                from repro.algorithms import heuristic_best

                return heuristic_best(chain, platform, max_period=P, max_latency=L)

        # Once adapted, Problem-routed solves are warning-free.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert old.solve_problem(problem).feasible

    def test_positional_call_warns_once_per_call_site(self, chain, hom):
        """Default warning filters dedupe by call site: a loop hitting
        the shim from one line warns exactly once."""
        method = get_method("heur-l")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default", DeprecationWarning)
            for _ in range(3):
                method.solve(chain, hom, 50.0, 100.0)  # one call site
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1

    def test_adaptation_is_idempotent(self, scratch_registry):
        """Re-registering a Method's canonical callable (replace=True)
        neither re-wraps nor re-warns, and keeps the fingerprint."""
        original = get_method("heur-l")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            replaced = register_method(
                "heur-l", replace=True, solve_batch=original.solve_batch
            )(original.solve)
        assert replaced.fingerprint() == original.fingerprint()
        # Dropping the batched capability is an identity change, so the
        # fingerprint (a cache-key ingredient) must move with it.
        stripped = register_method("heur-l", replace=True)(original.solve)
        assert stripped.fingerprint() != original.fingerprint()
