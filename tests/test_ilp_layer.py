"""Tests for the MILP modeling layer and its two backends."""


import numpy as np
import pytest

from repro.ilp import (
    Model,
    solve_with_branch_bound,
    solve_with_scipy,
)

BACKENDS = [solve_with_scipy, solve_with_branch_bound]


class TestModeling:
    def test_expression_algebra(self):
        m = Model()
        x, y = m.add_var("x"), m.add_var("y")
        e = 2 * x + 3 * y - 1 + x
        assert e.coeffs == {0: 3.0, 1: 3.0}
        assert e.constant == -1.0
        e2 = -(e - 4)
        assert e2.constant == 5.0
        assert e2.coeffs[0] == -3.0

    def test_rsub_and_radd(self):
        m = Model()
        x = m.add_var("x")
        e = 10 - x
        assert e.constant == 10.0 and e.coeffs[x.index] == -1.0
        e = 5 + x
        assert e.constant == 5.0

    def test_constraint_senses(self):
        m = Model()
        x = m.add_var("x")
        le = m.add_constraint(x <= 5, name="le")
        ge = m.add_constraint(x >= 1, name="ge")
        eq = m.add_constraint(x == 2, name="eq")
        assert le.sense == "<=" and ge.sense == ">=" and eq.sense == "=="

    def test_bad_constraint_rejected(self):
        m = Model()
        with pytest.raises(TypeError):
            m.add_constraint(True)  # type: ignore[arg-type]

    def test_bad_scalar_rejected(self):
        m = Model()
        x = m.add_var("x")
        with pytest.raises(TypeError):
            x * x  # type: ignore[operator]

    def test_variable_bounds_validated(self):
        m = Model()
        with pytest.raises(ValueError):
            m.add_var("x", lb=3, ub=1)

    def test_bad_sense(self):
        with pytest.raises(ValueError):
            Model(sense="maximize")

    def test_to_arrays_shapes(self):
        m = Model(sense="min")
        x = m.add_var("x", lb=0, ub=4)
        y = m.add_var("y", integer=True, lb=0, ub=1)
        m.add_constraint(x + 2 * y <= 3)
        m.add_constraint(x - y >= -1)
        m.add_constraint(x + y == 2)
        m.set_objective(x + y + 7)
        arr = m.to_arrays()
        assert arr["A_ub"].shape == (2, 2)
        assert arr["A_eq"].shape == (1, 2)
        assert arr["integrality"].tolist() == [0, 1]
        assert float(arr["obj_offset"]) == 7.0
        # >= rows negated into <=:
        assert arr["A_ub"][1].tolist() == [-1.0, 1.0]
        assert arr["b_ub"][1] == 1.0


@pytest.mark.parametrize("solve", BACKENDS)
class TestBackends:
    def test_pure_lp(self, solve):
        m = Model(sense="max")
        x = m.add_var("x", lb=0, ub=10)
        y = m.add_var("y", lb=0, ub=10)
        m.add_constraint(x + y <= 8)
        m.set_objective(3 * x + 2 * y)
        sol = solve(m)
        assert sol.optimal
        assert sol.objective == pytest.approx(3 * 8)

    def test_knapsack(self, solve):
        values = [10, 13, 7, 8, 6]
        weights = [3, 4, 2, 3, 2]
        cap = 7
        m = Model(sense="max")
        xs = [m.add_var(f"x{i}", integer=True, lb=0, ub=1) for i in range(5)]
        cons = None
        obj = None
        for x, v, w in zip(xs, values, weights):
            cons = w * x if cons is None else cons + w * x
            obj = v * x if obj is None else obj + v * x
        m.add_constraint(cons <= cap)
        m.set_objective(obj)
        sol = solve(m)
        assert sol.optimal
        # Optimal: items 1 (v13,w4) + 2 (v7,w2) = 20? vs 0+1=23 w7. -> 23.
        assert sol.objective == pytest.approx(23)

    def test_minimization(self, solve):
        m = Model(sense="min")
        x = m.add_var("x", lb=0, ub=10, integer=True)
        m.add_constraint(2 * x >= 5)
        m.set_objective(x + 1)
        sol = solve(m)
        assert sol.optimal
        assert sol.objective == pytest.approx(4)  # x = 3
        assert sol[x] == pytest.approx(3)

    def test_infeasible(self, solve):
        m = Model(sense="max")
        x = m.add_var("x", lb=0, ub=1)
        m.add_constraint(x >= 2)
        m.set_objective(x)
        sol = solve(m)
        assert sol.status == "infeasible"
        assert not sol.optimal

    def test_equality_constraints(self, solve):
        m = Model(sense="max")
        x = m.add_var("x", lb=0, ub=5, integer=True)
        y = m.add_var("y", lb=0, ub=5, integer=True)
        m.add_constraint(x + y == 4)
        m.set_objective(2 * x + y)
        sol = solve(m)
        assert sol.optimal
        assert sol.objective == pytest.approx(8)  # x=4, y=0

    def test_objective_offset(self, solve):
        m = Model(sense="max")
        x = m.add_var("x", lb=0, ub=1, integer=True)
        m.set_objective(x + 100)
        sol = solve(m)
        assert sol.objective == pytest.approx(101)


class TestBranchBoundSpecifics:
    def test_node_budget(self):
        rng = np.random.default_rng(0)
        m = Model(sense="max")
        xs = [m.add_var(f"x{i}", integer=True, lb=0, ub=1) for i in range(30)]
        w = rng.integers(1, 50, size=30)
        v = rng.integers(1, 50, size=30)
        cons = None
        obj = None
        for x, wi, vi in zip(xs, w, v):
            cons = float(wi) * x if cons is None else cons + float(wi) * x
            obj = float(vi) * x if obj is None else obj + float(vi) * x
        m.add_constraint(cons <= float(w.sum()) / 2)
        m.set_objective(obj)
        with pytest.raises(RuntimeError, match="nodes"):
            solve_with_branch_bound(m, max_nodes=1)

    def test_agrees_with_scipy_randomized(self):
        rng = np.random.default_rng(4)
        for _ in range(6):
            nv = int(rng.integers(3, 8))
            m = Model(sense="max")
            xs = [m.add_var(f"x{i}", integer=True, lb=0, ub=3) for i in range(nv)]
            obj = None
            for x in xs:
                c = float(rng.integers(1, 10))
                obj = c * x if obj is None else obj + c * x
            for _ in range(int(rng.integers(1, 4))):
                cons = None
                for x in xs:
                    c = float(rng.integers(0, 5))
                    cons = c * x if cons is None else cons + c * x
                m.add_constraint(cons <= float(rng.integers(5, 30)))
            m.set_objective(obj)
            a = solve_with_scipy(m)
            b = solve_with_branch_bound(m)
            assert a.status == b.status
            if a.optimal:
                assert a.objective == pytest.approx(b.objective, rel=1e-9)
