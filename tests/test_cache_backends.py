"""The pluggable cache storage layer: backend selection, cross-backend
bit-identity, migration round-trips, the SQLite backend's concurrency
contract (multiprocess stress), and the ``repro cache`` CLI."""

import json
import pickle
import sqlite3
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro import cli
from repro.experiments import ResultCache, get_method, homogeneous_suite, run_sweep
from repro.experiments.cache import (
    CACHE_FORMAT,
    FileTreeBackend,
    SQLiteBackend,
    migrate_cache,
    resolve_backend,
)
from repro.experiments.cache.backend import (
    detect_backend_kind,
    encode_payload,
    make_backend,
)
from repro.obs import collect

BOUNDS = [(100.0, 750.0), (300.0, 750.0)]


def scan_dict(backend):
    return dict(backend.scan())


def sweep(root, backend=None, jobs=None):
    """One small cached sweep; returns (SweepResult, ResultCache)."""
    cache = ResultCache(root, backend=backend)
    suite = homogeneous_suite(n_instances=3, seed=5)
    result = run_sweep(suite, [get_method("heur-l")], BOUNDS, cache=cache, jobs=jobs)
    return result, cache


class TestBackendSelection:
    def test_default_is_files(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
        assert ResultCache(tmp_path).backend.kind == "files"

    def test_env_selects_sqlite_for_fresh_dirs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        cache = ResultCache(tmp_path)
        assert cache.backend.kind == "sqlite"
        assert cache.root == tmp_path

    def test_env_rejects_unknown_backend(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "shelve")
        with pytest.raises(ValueError, match="unknown cache backend"):
            ResultCache(tmp_path)

    def test_on_disk_store_outranks_env(self, tmp_path, monkeypatch):
        """An existing store keeps its backend: flipping the env var
        must never silently cold-start a warm cache."""
        monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
        files = ResultCache(tmp_path)
        files.put_record("ab" * 32, {"v": 1})
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        again = ResultCache(tmp_path)
        assert again.backend.kind == "files"
        assert again.get_record("ab" * 32) is not None

    def test_cache_db_detected(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
        ResultCache(tmp_path, backend="sqlite").put_record("ab" * 32, {"v": 1})
        assert detect_backend_kind(tmp_path) == "sqlite"
        assert ResultCache(tmp_path).backend.kind == "sqlite"

    def test_explicit_backend_outranks_everything(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        assert ResultCache(tmp_path, backend="files").backend.kind == "files"

    def test_backend_instance_passthrough(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "store")
        cache = ResultCache(backend=backend)
        assert cache.backend is backend
        assert cache.root == tmp_path / "store"

    def test_rootless_construction_rejected(self):
        with pytest.raises(TypeError, match="root directory"):
            ResultCache()
        with pytest.raises(TypeError, match="root directory"):
            ResultCache(backend="sqlite")

    def test_resolve_backend_explicit_kind(self, tmp_path):
        assert resolve_backend(tmp_path, "sqlite").kind == "sqlite"
        with pytest.raises(ValueError, match="unknown cache backend"):
            make_backend("dbm", tmp_path)


class TestCrossBackendBitIdentity:
    """The acceptance criterion: the SQLite backend produces
    bit-identical SweepResult series, cache keys, and record payloads
    to the file backend."""

    def test_cold_sweeps_write_identical_stores(self, tmp_path):
        result_f, cache_f = sweep(tmp_path / "files", "files")
        result_s, cache_s = sweep(tmp_path / "sqlite", "sqlite")
        assert np.array_equal(result_f.solved, result_s.solved)
        assert np.array_equal(result_f.failure, result_s.failure)
        assert np.array_equal(
            result_f.objective_values, result_s.objective_values, equal_nan=True
        )
        entries_f = scan_dict(cache_f.backend)
        entries_s = scan_dict(cache_s.backend)
        assert entries_f.keys() == entries_s.keys()  # identical cache keys
        assert entries_f == entries_s  # identical payload bytes
        assert len(entries_f) == 3

    def test_warm_sweep_on_sqlite_matches_files(self, tmp_path):
        cold_f, _ = sweep(tmp_path / "files", "files")
        _, cache_s = sweep(tmp_path / "sqlite", "sqlite")
        warm_s, warm_cache = sweep(tmp_path / "sqlite")  # auto-detected
        assert warm_cache.backend.kind == "sqlite"
        assert warm_cache.stats()["hits"] == 3
        assert warm_cache.stats()["misses"] == 0
        assert np.array_equal(cold_f.failure, warm_s.failure)
        assert np.array_equal(cold_f.solved, warm_s.solved)

    def test_parallel_sweep_with_sqlite_cache(self, tmp_path):
        """Worker fan-out over a SQLite-cached sweep: handles never
        cross the pool boundary, results stay bit-identical."""
        serial, _ = sweep(tmp_path / "a", "sqlite")
        parallel, cache = sweep(tmp_path / "b", "sqlite", jobs=2)
        assert np.array_equal(serial.failure, parallel.failure)
        warm, warm_cache = sweep(tmp_path / "b", jobs=2)
        assert warm_cache.stats()["hits"] == 3
        assert np.array_equal(serial.failure, warm.failure)


class TestMigration:
    def test_round_trip_is_byte_identical(self, tmp_path):
        root = tmp_path / "cache"
        _, cache = sweep(root, "files")
        cache.put_record("ab" * 32, {"kind": "grid-probe", "period": 4.0})
        original = scan_dict(cache.backend)

        report = migrate_cache(root, to="sqlite")
        assert report["entries"] == report["verified"] == len(original)
        assert detect_backend_kind(root) == "sqlite"
        assert not list(root.glob("??/*.json"))  # source consumed
        assert scan_dict(SQLiteBackend(root)) == original

        report = migrate_cache(root, to="files")
        assert report["verified"] == len(original)
        assert detect_backend_kind(root) == "files"
        assert not (root / "cache.db").exists()
        assert scan_dict(FileTreeBackend(root)) == original

    def test_migrated_store_serves_warm_sweeps(self, tmp_path):
        root = tmp_path / "cache"
        cold, _ = sweep(root, "files")
        migrate_cache(root, to="sqlite")
        warm, cache = sweep(root)
        assert cache.backend.kind == "sqlite"
        assert cache.stats() == {
            "hits": 3, "misses": 0, "puts": 0, "corrupt": 0, "hit_rate": 1.0,
        }
        assert np.array_equal(cold.failure, warm.failure)

    def test_keep_source_leaves_backup(self, tmp_path):
        root = tmp_path / "cache"
        _, cache = sweep(root, "files")
        original = scan_dict(cache.backend)
        report = migrate_cache(root, to="sqlite", keep_source=True)
        assert report["source_removed"] is False
        assert scan_dict(FileTreeBackend(root)) == original
        assert scan_dict(SQLiteBackend(root)) == original

    def test_rejects_empty_and_noop_migrations(self, tmp_path):
        with pytest.raises(ValueError, match="no cache store"):
            migrate_cache(tmp_path / "nowhere", to="sqlite")
        root = tmp_path / "cache"
        sweep(root, "files")
        with pytest.raises(ValueError, match="already uses"):
            migrate_cache(root, to="files")
        with pytest.raises(ValueError, match="unknown migration target"):
            migrate_cache(root, to="dbm")


class TestSQLiteBackend:
    def test_scan_is_key_sorted(self, tmp_path):
        backend = SQLiteBackend(tmp_path)
        for key in ("cd" * 32, "ab" * 32, "ef" * 32):
            backend.store(key, {"k": key})
        keys = [key for key, _ in backend.scan()]
        assert keys == sorted(keys)

    def test_pickling_drops_the_connection(self, tmp_path):
        backend = SQLiteBackend(tmp_path)
        backend.store("ab" * 32, {"v": 1})
        assert backend._conn is not None
        clone = pickle.loads(pickle.dumps(backend))
        assert clone._conn is None and clone._pid is None
        assert clone.load("ab" * 32) == {"v": 1}  # reopens lazily

    def test_unknown_schema_version_refuses(self, tmp_path):
        backend = SQLiteBackend(tmp_path)
        backend.store("ab" * 32, {"v": 1})
        conn = backend.connection()
        conn.execute("BEGIN IMMEDIATE")
        conn.execute("UPDATE schema_version SET version = 99")
        conn.execute("COMMIT")
        backend.close()
        with pytest.raises(ValueError, match="schema version 99"):
            SQLiteBackend(tmp_path).connection()

    def test_storage_stats_never_create_the_db(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "fresh")
        stats = backend.storage_stats()
        assert stats == {
            "backend": "sqlite", "entries": 0, "bytes": 0, "schema_version": None,
        }
        assert not (tmp_path / "fresh" / "cache.db").exists()

    def test_per_backend_telemetry_counters(self, tmp_path):
        cache = ResultCache(tmp_path, backend="sqlite")
        with collect() as tele:
            cache.put_record("ab" * 32, {"v": 1})
            cache.get_record("ab" * 32)
            cache.get_record("cd" * 32)
            cache.backend.store_text("ef" * 32, "{torn")
            cache.get_record("ef" * 32)
        counters = tele.snapshot()["counters"]
        assert counters["cache.backend.put[sqlite]"] == 1
        assert counters["cache.backend.hit[sqlite]"] == 1
        assert counters["cache.backend.miss[sqlite]"] == 1
        assert counters["cache.backend.corrupt[sqlite]"] == 1


def _stress_record(index):
    """Deterministic per-key payload, so any torn write is detectable."""
    return {"value": index, "blob": f"{index:03d}" * 40}


def _stress_keys(n):
    return [f"{i:02d}" * 32 for i in range(n)]


def _stress_worker(root, worker_id, n_rounds, n_keys):
    """Hammer the shared store: overlapping puts and reads, asserting
    every record read back is complete and self-consistent."""
    cache = ResultCache(root, backend="sqlite")
    keys = _stress_keys(n_keys)
    for round_no in range(n_rounds):
        for i, key in enumerate(keys):
            cache.put_record(key, _stress_record(i))
            peek = (i * 7 + worker_id + round_no) % n_keys
            record = cache.get_record(keys[peek])
            if record is not None:
                expected = {"repro_cache": CACHE_FORMAT, **_stress_record(peek)}
                assert record == expected, f"torn record under {keys[peek]}"
    return cache.stats()


class TestConcurrentWriters:
    def test_multiprocess_stress_no_lost_or_torn_records(self, tmp_path):
        """The fleet-safety criterion: N processes hammering one
        ``cache.db`` with overlapping puts/gets lose nothing, tear
        nothing, and report counters that reconcile."""
        n_workers, n_rounds, n_keys = 4, 3, 20
        root = tmp_path / "cache"
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = [
                pool.submit(_stress_worker, root, wid, n_rounds, n_keys)
                for wid in range(n_workers)
            ]
            stats = [f.result(timeout=120) for f in futures]

        per_worker_ops = n_rounds * n_keys
        assert sum(s["puts"] for s in stats) == n_workers * per_worker_ops
        assert sum(s["hits"] + s["misses"] for s in stats) == n_workers * per_worker_ops
        assert sum(s["corrupt"] for s in stats) == 0

        # No lost records: every key present, every payload canonical.
        backend = SQLiteBackend(root)
        entries = scan_dict(backend)
        assert len(entries) == n_keys
        for i, key in enumerate(_stress_keys(n_keys)):
            expected = {"repro_cache": CACHE_FORMAT, **_stress_record(i)}
            assert entries[key] == encode_payload(expected)
        assert backend.storage_stats()["entries"] == n_keys


class TestCacheCLI:
    def run_cli(self, capsys, *argv):
        code = cli.main(list(argv))
        return code, capsys.readouterr().out

    def test_stats_text_and_json(self, capsys, tmp_path):
        root = tmp_path / "cache"
        ResultCache(root, backend="sqlite").put_record("ab" * 32, {"v": 1})
        code, out = self.run_cli(capsys, "cache", "stats", "--cache-dir", str(root))
        assert code == 0
        assert "backend" in out and "sqlite" in out and "entries" in out
        code, out = self.run_cli(
            capsys, "cache", "stats", "--cache-dir", str(root), "--json"
        )
        report = json.loads(out)
        assert report["entries"] == 1 and report["detected"] == "sqlite"
        assert report["schema_version"] == 1

    def test_migrate_and_vacuum(self, capsys, tmp_path):
        root = tmp_path / "cache"
        sweep(root, "files")
        code, out = self.run_cli(
            capsys, "cache", "migrate", "--to", "sqlite", "--cache-dir", str(root)
        )
        assert code == 0
        assert "migrated 3 entries files -> sqlite" in out
        assert "verified 3 row digests" in out
        code, out = self.run_cli(
            capsys, "cache", "vacuum", "--cache-dir", str(root), "--json"
        )
        assert code == 0
        assert json.loads(out)["backend"] == "sqlite"

    def test_env_fallback_and_missing_dir(self, capsys, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit, match="no cache directory"):
            cli.main(["cache", "stats"])
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code, out = self.run_cli(capsys, "cache", "stats", "--json")
        assert code == 0 and json.loads(out)["entries"] == 0

    def test_noop_migration_exits_nonzero(self, capsys, tmp_path):
        sweep(tmp_path / "cache", "files")
        with pytest.raises(SystemExit, match="already uses"):
            cli.main(
                ["cache", "migrate", "--to", "files",
                 "--cache-dir", str(tmp_path / "cache")]
            )


class TestSchemaGuardThroughSqlite3:
    def test_wal_mode_is_active(self, tmp_path):
        backend = SQLiteBackend(tmp_path)
        backend.store("ab" * 32, {"v": 1})
        mode = backend.connection().execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        backend.close()
        # The db file is self-describing: a plain sqlite3 connection
        # sees the same rows the backend wrote.
        with sqlite3.connect(tmp_path / "cache.db") as conn:
            rows = conn.execute("SELECT key, payload FROM entries").fetchall()
        assert rows == [("ab" * 32, encode_payload({"v": 1}))]
