"""Tests for Algorithms 1 and 2 and the binary-search period optimizer,
validated against brute-force enumeration (Theorems 1 and 2)."""

import math

import numpy as np
import pytest

from repro.algorithms import (
    brute_force_best,
    optimize_period_reliability,
    optimize_reliability,
    optimize_reliability_period,
)
from repro.algorithms.dp_period import candidate_periods
from repro.core import Platform, TaskChain, random_chain

HOM = dict(speed=1.0, failure_rate=1e-8, link_failure_rate=1e-5, bandwidth=1.0)


def hom_platform(p, K, **overrides):
    args = {**HOM, **overrides}
    return Platform.homogeneous_platform(p, max_replication=K, **args)


class TestAlgorithm1:
    def test_single_task_single_proc(self):
        chain = TaskChain([5.0], [0.0])
        plat = hom_platform(1, 1)
        res = optimize_reliability(chain, plat)
        assert res.feasible
        assert res.mapping.m == 1
        assert res.log_reliability == pytest.approx(-1e-8 * 5.0)

    def test_replicates_up_to_k(self):
        chain = TaskChain([5.0], [0.0])
        plat = hom_platform(5, 3)
        res = optimize_reliability(chain, plat)
        assert res.mapping.replicas[0] == (0, 1, 2)  # K = 3 < p

    def test_dp_value_matches_evaluation(self):
        chain = random_chain(6, rng=1)
        plat = hom_platform(4, 2)
        res = optimize_reliability(chain, plat)
        assert res.details["dp_log_reliability"] == pytest.approx(
            res.log_reliability, rel=1e-12
        )

    def test_rejects_heterogeneous(self):
        chain = TaskChain([1.0], [0.0])
        plat = Platform([1.0, 2.0], [1e-8, 1e-8])
        with pytest.raises(ValueError, match="homogeneous"):
            optimize_reliability(chain, plat)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        p = int(rng.integers(1, 5))
        K = int(rng.integers(1, 4))
        chain = random_chain(n, rng)
        plat = hom_platform(p, K)
        dp = optimize_reliability(chain, plat)
        bf = brute_force_best(chain, plat)
        assert dp.log_reliability == pytest.approx(bf.log_reliability, rel=1e-9)

    def test_more_processors_never_hurt(self):
        chain = random_chain(5, rng=7)
        vals = []
        for p in range(1, 7):
            res = optimize_reliability(chain, hom_platform(p, 3))
            vals.append(res.log_reliability)
        assert all(b >= a - 1e-30 for a, b in zip(vals, vals[1:]))


class TestAlgorithm2:
    def test_period_bound_enforced(self):
        chain = TaskChain([6.0, 6.0], [1.0, 0.0])
        plat = hom_platform(4, 2)
        res = optimize_reliability_period(chain, plat, max_period=8.0)
        assert res.feasible
        assert res.evaluation.worst_case_period <= 8.0
        assert res.mapping.m == 2

    def test_infeasible_when_task_too_big(self):
        chain = TaskChain([10.0], [0.0])
        plat = hom_platform(2, 2)
        res = optimize_reliability_period(chain, plat, max_period=5.0)
        assert not res.feasible

    def test_infeasible_when_comm_too_big(self):
        chain = TaskChain([1.0, 1.0], [50.0, 0.0])
        plat = hom_platform(2, 1)
        # Both intervals together (no comm) fit compute-wise with one
        # interval of work 2 <= 5; splitting would need comm 50 > 5.
        res = optimize_reliability_period(chain, plat, max_period=5.0)
        assert res.feasible
        assert res.mapping.m == 1

    def test_unbounded_reduces_to_algorithm1(self):
        chain = random_chain(7, rng=3)
        plat = hom_platform(5, 3)
        a1 = optimize_reliability(chain, plat)
        a2 = optimize_reliability_period(chain, plat, max_period=math.inf)
        assert a1.log_reliability == pytest.approx(a2.log_reliability, rel=1e-12)

    def test_invalid_bound(self):
        chain = TaskChain([1.0], [0.0])
        with pytest.raises(ValueError):
            optimize_reliability_period(chain, hom_platform(1, 1), max_period=0.0)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(2, 6))
        p = int(rng.integers(1, 5))
        K = int(rng.integers(1, 4))
        chain = random_chain(n, rng)
        plat = hom_platform(p, K)
        P = float(rng.uniform(20, 300))
        dp = optimize_reliability_period(chain, plat, max_period=P)
        bf = brute_force_best(chain, plat, max_period=P)
        assert dp.feasible == bf.feasible
        if dp.feasible:
            assert dp.log_reliability == pytest.approx(bf.log_reliability, rel=1e-9)

    def test_monotone_in_period_bound(self):
        chain = random_chain(6, rng=11)
        plat = hom_platform(5, 2)
        vals = []
        for P in (50.0, 100.0, 200.0, 400.0, 800.0):
            res = optimize_reliability_period(chain, plat, max_period=P)
            vals.append(res.log_reliability if res.feasible else -math.inf)
        assert all(b >= a for a, b in zip(vals, vals[1:]))


class TestPeriodMinimization:
    def test_candidate_periods_cover_optimum(self):
        chain = TaskChain([4.0, 2.0], [3.0, 0.0])
        plat = hom_platform(2, 1)
        cands = candidate_periods(chain, plat)
        # Work values: 4, 2, 6; comm values: 3 (the o_n = 0 is dropped).
        assert set(np.round(cands, 9)) == {2.0, 3.0, 4.0, 6.0}

    def test_minimal_period_for_reliability(self):
        chain = TaskChain([4.0, 2.0], [3.0, 0.0])
        plat = hom_platform(4, 2)
        # Very weak requirement: any mapping qualifies; best period is 4
        # (split at cut with comm 3: stages 4 and 2, comm 3 -> period 4).
        res = optimize_period_reliability(chain, plat, min_log_reliability=-1.0)
        assert res.feasible
        assert res.details["optimal_period"] == pytest.approx(4.0)

    def test_tight_reliability_forces_larger_period(self):
        chain = TaskChain([4.0, 2.0], [3.0, 0.0])
        plat = hom_platform(2, 2)
        # With p=2, K=2: max reliability needs both replicas on a single
        # interval (avoiding the unreliable comm), so period = 6.
        best = optimize_reliability(chain, plat)
        res = optimize_period_reliability(
            chain, plat, min_log_reliability=best.log_reliability
        )
        assert res.feasible
        assert res.details["optimal_period"] == pytest.approx(6.0)

    def test_infeasible_reliability(self):
        chain = TaskChain([4.0], [0.0])
        plat = hom_platform(1, 1)
        res = optimize_period_reliability(chain, plat, min_log_reliability=-1e-12)
        assert not res.feasible
        assert "best_achievable" in res.details

    def test_result_meets_bound(self):
        chain = random_chain(6, rng=5)
        plat = hom_platform(5, 3)
        target = optimize_reliability(chain, plat).log_reliability * 10
        res = optimize_period_reliability(chain, plat, min_log_reliability=target)
        assert res.feasible
        assert res.log_reliability >= target
        assert res.evaluation.worst_case_period == pytest.approx(
            res.details["optimal_period"]
        )

    def test_optimality_against_sweep(self):
        # The returned period must be the smallest candidate achieving
        # the reliability bound.
        chain = random_chain(5, rng=9)
        plat = hom_platform(4, 2)
        target = optimize_reliability(chain, plat).log_reliability * 5
        res = optimize_period_reliability(chain, plat, min_log_reliability=target)
        assert res.feasible
        P_star = res.details["optimal_period"]
        for P in candidate_periods(chain, plat):
            if P >= P_star:
                break
            probe = optimize_reliability_period(chain, plat, max_period=float(P))
            assert (not probe.feasible) or probe.log_reliability < target

    def test_rejects_bad_target(self):
        chain = TaskChain([1.0], [0.0])
        with pytest.raises(ValueError):
            optimize_period_reliability(chain, hom_platform(1, 1), 0.5)
