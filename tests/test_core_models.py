"""Unit tests for TaskChain, Platform, Interval, and Mapping."""

import numpy as np
import pytest

from repro.core import Interval, Mapping, Platform, TaskChain
from repro.core.interval import (
    compositions,
    cuts_from_partition,
    partition_from_cuts,
    partitions_with_m_intervals,
    validate_partition,
)


@pytest.fixture
def chain():
    return TaskChain(work=[4.0, 2.0, 6.0, 8.0], output=[1.0, 3.0, 2.0, 0.0])


@pytest.fixture
def platform():
    return Platform.homogeneous_platform(
        6, speed=2.0, failure_rate=1e-6, bandwidth=4.0,
        link_failure_rate=1e-5, max_replication=3,
    )


class TestTaskChain:
    def test_lengths(self, chain):
        assert chain.n == 4
        assert len(chain) == 4

    def test_total_work(self, chain):
        assert chain.total_work == 20.0

    def test_work_between(self, chain):
        assert chain.work_between(0, 4) == 20.0
        assert chain.work_between(1, 3) == 8.0
        assert chain.work_between(2, 3) == 6.0

    def test_work_between_invalid(self, chain):
        with pytest.raises(ValueError):
            chain.work_between(2, 2)
        with pytest.raises(ValueError):
            chain.work_between(-1, 2)
        with pytest.raises(ValueError):
            chain.work_between(0, 5)

    def test_output_and_input(self, chain):
        assert chain.output_of(2) == 3.0
        assert chain.input_of(0) == 0.0  # the o_0 = 0 convention
        assert chain.input_of(2) == 3.0
        assert chain.output_of(4) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            TaskChain([1.0, 2.0], [1.0])

    def test_nonpositive_work_rejected(self):
        with pytest.raises(ValueError, match="work"):
            TaskChain([1.0, 0.0], [1.0, 0.0])

    def test_negative_output_rejected(self):
        with pytest.raises(ValueError, match="output"):
            TaskChain([1.0], [-1.0])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            TaskChain([float("nan")], [0.0])

    def test_immutability(self, chain):
        with pytest.raises(ValueError):
            chain.work[0] = 99.0

    def test_equality_and_hash(self, chain):
        other = TaskChain(work=[4.0, 2.0, 6.0, 8.0], output=[1.0, 3.0, 2.0, 0.0])
        assert chain == other
        assert hash(chain) == hash(other)
        assert chain != TaskChain([1.0], [0.0])

    def test_repr(self, chain):
        assert "n=4" in repr(chain)


class TestPlatform:
    def test_basic(self, platform):
        assert platform.p == 6
        assert platform.homogeneous
        assert platform.max_replication == 3

    def test_heterogeneous_by_speed(self):
        plat = Platform([1.0, 2.0], [1e-6, 1e-6])
        assert not plat.homogeneous

    def test_heterogeneous_by_rate(self):
        plat = Platform([1.0, 1.0], [1e-6, 1e-7])
        assert not plat.homogeneous

    def test_validation(self):
        with pytest.raises(ValueError, match="speeds"):
            Platform([0.0], [1e-6])
        with pytest.raises(ValueError, match="failure rates"):
            Platform([1.0], [-1e-6])
        with pytest.raises(ValueError, match="bandwidth"):
            Platform([1.0], [1e-6], bandwidth=0.0)
        with pytest.raises(ValueError, match="link_failure_rate"):
            Platform([1.0], [1e-6], link_failure_rate=-1.0)
        with pytest.raises(ValueError, match="max_replication"):
            Platform([1.0], [1e-6], max_replication=0)
        with pytest.raises(ValueError, match="same length"):
            Platform([1.0, 2.0], [1e-6])

    def test_homogeneous_platform_factory(self):
        plat = Platform.homogeneous_platform(3, speed=5.0)
        assert plat.p == 3
        assert np.all(plat.speeds == 5.0)
        with pytest.raises(ValueError):
            Platform.homogeneous_platform(0)

    def test_equality_and_hash(self, platform):
        clone = Platform.homogeneous_platform(
            6, speed=2.0, failure_rate=1e-6, bandwidth=4.0,
            link_failure_rate=1e-5, max_replication=3,
        )
        assert platform == clone
        assert hash(platform) == hash(clone)

    def test_repr_mentions_kind(self, platform):
        assert "homogeneous" in repr(platform)


class TestInterval:
    def test_basic(self):
        iv = Interval(2, 5)
        assert len(iv) == 3
        assert list(iv.tasks) == [2, 3, 4]
        assert 3 in iv and 5 not in iv

    def test_invalid(self):
        with pytest.raises(ValueError):
            Interval(3, 3)
        with pytest.raises(ValueError):
            Interval(-1, 2)
        with pytest.raises(TypeError):
            Interval(0.0, 2)  # type: ignore[arg-type]

    def test_ordering(self):
        assert Interval(0, 1) < Interval(0, 2) < Interval(1, 2)


class TestPartitions:
    def test_from_cuts(self):
        part = partition_from_cuts(5, [2, 3])
        assert [(iv.start, iv.stop) for iv in part] == [(0, 2), (2, 3), (3, 5)]

    def test_cut_roundtrip(self):
        part = partition_from_cuts(6, [1, 4])
        assert cuts_from_partition(part) == [1, 4]

    def test_invalid_cut(self):
        with pytest.raises(ValueError):
            partition_from_cuts(5, [0])
        with pytest.raises(ValueError):
            partition_from_cuts(5, [5])

    def test_validate_partition_gaps(self):
        with pytest.raises(ValueError, match="contiguous"):
            validate_partition(5, [Interval(0, 2), Interval(3, 5)])
        with pytest.raises(ValueError, match="start at 0"):
            validate_partition(5, [Interval(1, 5)])
        with pytest.raises(ValueError, match="stop at 5"):
            validate_partition(5, [Interval(0, 4)])
        with pytest.raises(ValueError, match="at least one"):
            validate_partition(5, [])

    def test_compositions_count(self):
        # C(n-1, m-1) compositions of n into m parts.
        from math import comb

        for n in range(1, 7):
            for m in range(1, n + 1):
                got = list(compositions(n, m))
                assert len(got) == comb(n - 1, m - 1)
                for part in got:
                    validate_partition(n, part)
                    assert len(part) == m

    def test_all_partitions_count(self):
        assert sum(1 for _ in partitions_with_m_intervals(5)) == 2 ** 4
        assert sum(1 for _ in partitions_with_m_intervals(5, max_m=2)) == 1 + 4


class TestMapping:
    def test_valid_mapping(self, chain, platform):
        m = Mapping(
            chain,
            platform,
            [(Interval(0, 2), (0, 1)), (Interval(2, 4), (2,))],
        )
        assert m.m == 2
        assert m.processors_used == 3
        assert m.replication_level == 1.5
        assert m.interval_work(0) == 6.0
        assert m.interval_output(0) == 3.0
        assert m.interval_input(0) == 0.0
        assert m.interval_input(1) == 3.0

    def test_rejects_processor_reuse(self, chain, platform):
        with pytest.raises(ValueError, match="more than one interval"):
            Mapping(
                chain,
                platform,
                [(Interval(0, 2), (0,)), (Interval(2, 4), (0,))],
            )

    def test_rejects_duplicate_within_interval(self, chain, platform):
        with pytest.raises(ValueError, match="twice"):
            Mapping(chain, platform, [(Interval(0, 4), (1, 1))])

    def test_rejects_empty_replicas(self, chain, platform):
        with pytest.raises(ValueError, match="no replica"):
            Mapping(chain, platform, [(Interval(0, 4), ())])

    def test_rejects_too_many_replicas(self, chain, platform):
        with pytest.raises(ValueError, match="exceeding K"):
            Mapping(chain, platform, [(Interval(0, 4), (0, 1, 2, 3))])

    def test_rejects_bad_processor_index(self, chain, platform):
        with pytest.raises(ValueError, match="out of range"):
            Mapping(chain, platform, [(Interval(0, 4), (99,))])

    def test_rejects_non_partition(self, chain, platform):
        with pytest.raises(ValueError):
            Mapping(chain, platform, [(Interval(0, 3), (0,))])

    def test_iteration_order(self, chain, platform):
        m = Mapping(
            chain,
            platform,
            [(Interval(0, 1), (5,)), (Interval(1, 4), (0, 2))],
        )
        pairs = list(m)
        assert pairs[0][0] == Interval(0, 1)
        assert pairs[1][1] == (0, 2)

    def test_equality(self, chain, platform):
        a = Mapping(chain, platform, [(Interval(0, 4), (0,))])
        b = Mapping(chain, platform, [(Interval(0, 4), (0,))])
        assert a == b and hash(a) == hash(b)
