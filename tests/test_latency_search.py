"""het-latency-search: the heterogeneous latency gap-closer — scalar
search behavior, registry metadata, planner/facade resolution, and the
sweep round-trip."""

import math

import numpy as np
import pytest

from repro.core import Platform, TaskChain
from repro.experiments import get_method, run_sweep
from repro.extensions.latency_search import minimize_latency_search
from repro.extensions.period_search import DEFAULT_MAX_PROBES, DEFAULT_REL_TOL
from repro.solve import Problem, plan_methods, solve
from repro.util.logrel import from_reliability


@pytest.fixture
def het_instance():
    chain = TaskChain([6.0, 4.0, 5.0], [1.0, 2.0, 0.0])
    platform = Platform(
        speeds=[2.0, 1.0, 1.5], failure_rates=[1e-4, 1e-5, 1e-4],
        link_failure_rate=1e-5, max_replication=2,
    )
    return chain, platform


class TestScalarSearch:
    def test_matches_oracle_on_tiny_instance(self, het_instance):
        chain, platform = het_instance
        problem = Problem(
            chain, platform, objective="latency", min_reliability=0.5
        )
        search = solve(problem)  # auto -> het-latency-search
        oracle = solve(problem, method="brute-force")
        assert search.method == "het-latency-search" and search.feasible
        assert search.objective_value("latency") >= (
            oracle.objective_value("latency") - 1e-9
        )
        assert search.evaluation.reliability >= 0.5

    def test_answer_is_a_probed_witness(self, het_instance):
        chain, platform = het_instance
        result = minimize_latency_search(chain, platform)
        assert result.feasible
        details = result.details
        assert details["optimal_latency"] == float(
            result.evaluation.worst_case_latency
        )
        # The analytic floor bounds any witness from below.
        lo = float(np.sum(chain.work)) / float(np.max(platform.speeds))
        assert details["optimal_latency"] >= lo

    def test_honors_period_bound_and_latency_cap(self, het_instance):
        chain, platform = het_instance
        bounded = minimize_latency_search(chain, platform, max_period=20.0)
        assert bounded.feasible
        assert bounded.evaluation.worst_case_period <= 20.0
        # A latency cap below the analytic floor is infeasible.
        lo = float(np.sum(chain.work)) / float(np.max(platform.speeds))
        capped = minimize_latency_search(chain, platform, max_latency=lo / 2)
        assert not capped.feasible
        assert capped.details["probes"] == 1

    def test_reliability_floor_can_defeat_it(self, het_instance):
        chain, platform = het_instance
        floored = minimize_latency_search(
            chain, platform,
            min_log_reliability=from_reliability(1.0 - 1e-15),
        )
        assert not floored.feasible

    def test_exhausted_probe_budget_reports_not_converged(self):
        chain = TaskChain([6.0, 6.0], [1.0, 0.0])
        platform = Platform(
            speeds=[2.0, 1.0, 1.0], failure_rates=[1e-4] * 3,
            max_replication=2,
        )
        starved = minimize_latency_search(chain, platform, max_probes=1)
        assert starved.feasible
        assert starved.details["probes"] == 1
        assert starved.details["converged"] is False
        lo, hi = starved.details["bracket"]
        assert hi - lo > DEFAULT_REL_TOL * max(hi, 1.0)

    def test_default_budget_converges(self):
        chain = TaskChain([6.0, 6.0], [1.0, 0.0])
        platform = Platform(
            speeds=[2.0, 1.0, 1.0], failure_rates=[1e-4] * 3,
            max_replication=2,
        )
        result = minimize_latency_search(chain, platform)
        assert result.details["converged"] is True
        assert result.details["probes"] < DEFAULT_MAX_PROBES
        lo, hi = result.details["bracket"]
        assert hi - lo <= DEFAULT_REL_TOL * max(hi, 1.0)

    def test_validates_arguments(self, het_instance):
        chain, platform = het_instance
        with pytest.raises(ValueError, match="log-probability"):
            minimize_latency_search(chain, platform, min_log_reliability=0.5)
        with pytest.raises(ValueError, match="bounds"):
            minimize_latency_search(chain, platform, max_latency=0.0)
        with pytest.raises(ValueError, match="rel_tol"):
            minimize_latency_search(chain, platform, rel_tol=0.0)


class TestRegistrationAndPlanning:
    def test_registry_metadata(self):
        method = get_method("het-latency-search")
        assert method.objectives == ("latency",)
        assert not method.homogeneous_only
        assert not method.exact
        assert method.solve_batch is not None
        # Pricier than the exact hom DP, so auto keeps dp-latency on
        # homogeneous platforms.
        assert method.cost_hint > get_method("dp-latency").cost_hint

    def test_planner_selects_it_for_het_scenarios(self):
        plan = plan_methods("high-heterogeneity", objective="latency")
        assert plan.selected == ("het-latency-search",)
        reasons = {s.method: s.reason for s in plan.skipped}
        assert "homogeneous" in reasons["dp-latency"]

    def test_hom_platforms_still_resolve_to_dp(self):
        chain = TaskChain([6.0, 6.0], [1.0, 0.0])
        platform = Platform.homogeneous_platform(
            3, failure_rate=1e-4, link_failure_rate=1e-5, max_replication=2
        )
        result = solve(Problem(chain, platform, objective="latency"))
        assert result.method == "dp-latency"

    def test_latency_sweep_on_het_scenario(self):
        sweep = run_sweep(
            "high-heterogeneity",
            [get_method("het-latency-search")],
            [(math.inf, math.inf)],
            n_instances=3,
            objective="latency",
        )
        assert int(sweep.counts("het-latency-search")[0]) == 3
        q = sweep.objective_quantiles("het-latency-search")
        assert np.all(np.isfinite(q)) and np.all(q > 0)
