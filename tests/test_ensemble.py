"""The columnar ensemble core: struct-of-arrays storage, lazy views,
round-trips, content identity, and the sweep bit-identity contract."""

import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.core import (
    Ensemble,
    Platform,
    TaskChain,
    ensembles_from_instances,
    instance_digest,
)
from repro.experiments import (
    ResultCache,
    get_method,
    heterogeneous_suite,
    homogeneous_suite,
    run_sweep,
)
from repro.experiments.instances import HetInstancePair
from repro.io import dumps, loads
from repro.scenarios import generate_ensemble, generate_ensembles, get_scenario


@pytest.fixture(scope="module")
def hom_ensemble():
    return generate_ensemble("section8-hom", n_instances=5, seed=3)


@pytest.fixture(scope="module")
def het_ensemble():
    return generate_ensemble("section8-het", n_instances=4, seed=3)


class TestConstruction:
    def test_dimensions_and_columns(self, hom_ensemble):
        e = hom_ensemble
        assert (e.n_instances, e.n_tasks, e.p) == (5, 15, 10)
        assert len(e) == 5
        assert e.work.shape == e.output.shape == (5, 15)
        assert e.speeds.shape == e.failure_rates.shape == (5, 10)
        assert not e.work.flags.writeable

    def test_shared_platform_broadcasts(self, hom_ensemble):
        e = hom_ensemble
        assert e.platform_shared  # constant speeds/rates -> one stored row
        assert e.platform(0) is e.platform(4)
        assert np.all(e.speeds == 1.0)

    def test_validation(self):
        ok = dict(work=[[1.0, 2.0]], output=[[1.0, 0.0]], speeds=[[1.0]],
                  failure_rates=[[0.0]])
        Ensemble(**ok)
        with pytest.raises(ValueError, match="work amounts must be > 0"):
            Ensemble(**{**ok, "work": [[0.0, 2.0]]})
        with pytest.raises(ValueError, match="output sizes must be >= 0"):
            Ensemble(**{**ok, "output": [[-1.0, 0.0]]})
        with pytest.raises(ValueError, match="speeds must be > 0"):
            Ensemble(**{**ok, "speeds": [[-1.0]]})
        with pytest.raises(ValueError, match="same shape"):
            Ensemble(**{**ok, "output": [[1.0, 0.0, 3.0]]})
        with pytest.raises(ValueError, match="1 or 1 rows"):
            Ensemble(**{**ok, "speeds": [[1.0], [2.0]], "failure_rates": [[0.0], [0.0]]})
        with pytest.raises(ValueError, match="max_replication"):
            Ensemble(**ok, max_replication=0)
        with pytest.raises(ValueError, match="finite"):
            Ensemble(**{**ok, "work": [[np.inf, 2.0]]})

    def test_paired_needs_one_rate(self):
        with pytest.raises(ValueError, match="common processor failure rate"):
            Ensemble(
                work=[[1.0, 2.0]], output=[[1.0, 0.0]],
                speeds=[[1.0, 2.0]], failure_rates=[[1e-8, 1e-5]],
                hom_counterpart_speed=5.0,
            )

    def test_homogeneous_rows_vectorized(self):
        e = Ensemble(
            work=[[1.0], [2.0]], output=[[0.0], [0.0]],
            speeds=[[1.0, 1.0], [1.0, 2.0]],
            failure_rates=[[1e-8, 1e-8], [1e-8, 1e-8]],
        )
        assert list(e.homogeneous_rows()) == [True, False]
        assert not e.all_homogeneous
        assert e[0].homogeneous and not e[1].homogeneous


class TestViews:
    def test_tuple_compatibility(self, hom_ensemble):
        view = hom_ensemble[2]
        chain, platform = view  # unpacks like the historical pair
        assert isinstance(chain, TaskChain) and isinstance(platform, Platform)
        assert len(view) == 2
        assert view[0] is view.chain and view[1] is view.platform

    def test_lazy_and_cached(self, hom_ensemble):
        view = hom_ensemble[1]
        assert view.chain is hom_ensemble.chain(1)  # one object per row
        assert view.chain is hom_ensemble[1].chain

    def test_negative_and_out_of_range(self, hom_ensemble):
        assert hom_ensemble[-1].index == 4
        with pytest.raises(IndexError):
            hom_ensemble[5]
        with pytest.raises(TypeError):
            hom_ensemble["0"]

    def test_raw_columns_match_materialized(self, hom_ensemble):
        view = hom_ensemble[3]
        assert np.array_equal(view.work, view.chain.work)
        assert np.array_equal(view.speeds, view.platform.speeds)
        assert view.bandwidth == view.platform.bandwidth

    def test_problem_materialization(self, hom_ensemble):
        problem = hom_ensemble[0].problem(
            max_period=250.0, objective="period", min_reliability=0.5
        )
        assert problem.max_period == 250.0
        assert problem.objective == "period" and problem.min_reliability == 0.5

    def test_iteration_order(self, hom_ensemble):
        assert [v.index for v in hom_ensemble] == list(range(5))


class TestMaterializeRoundTrips:
    def test_matches_pre_refactor_hom_suite(self):
        """Pinned: ensemble rows == the legacy Section 8.1 suite, bit
        for bit (the pre-refactor reference implementation)."""
        legacy = homogeneous_suite(n_instances=6, seed=13)
        ensemble = generate_ensemble("section8-hom", n_instances=6, seed=13)
        for (lc, lp), (sc, sp) in zip(legacy, ensemble.materialize()):
            assert np.array_equal(lc.work, sc.work)
            assert np.array_equal(lc.output, sc.output)
            assert lp == sp

    def test_matches_pre_refactor_het_suite(self):
        legacy = heterogeneous_suite(n_instances=5, seed=21)
        ensemble = generate_ensemble("section8-het", n_instances=5, seed=21)
        pairs = ensemble.materialize()
        assert all(isinstance(p, HetInstancePair) for p in pairs)
        for lpair, spair in zip(legacy, pairs):
            assert lpair.chain == spair.chain
            assert lpair.het_platform == spair.het_platform
            assert lpair.hom_platform == spair.hom_platform

    def test_from_instances_round_trip(self, hom_ensemble):
        rebuilt = Ensemble.from_instances(hom_ensemble.materialize())
        assert rebuilt == hom_ensemble
        assert rebuilt.platform_shared  # identical rows collapse again
        assert rebuilt.row_hash(0) == hom_ensemble.row_hash(0)

    def test_from_instances_paired_round_trip(self, het_ensemble):
        rebuilt = Ensemble.from_instances(het_ensemble.materialize())
        assert rebuilt == het_ensemble
        assert rebuilt.paired and rebuilt.hom_counterpart_speed == 5.0

    def test_hom_counterpart(self, het_ensemble):
        hom = het_ensemble.hom_counterpart()
        assert not hom.paired and hom.platform_shared
        assert hom.platform(0) == het_ensemble.hom_platform
        assert np.array_equal(hom.work, het_ensemble.work)
        with pytest.raises(ValueError, match="not a paired ensemble"):
            hom.hom_counterpart()

    def test_io_round_trip(self, het_ensemble):
        again = loads(dumps(het_ensemble))
        assert again == het_ensemble
        assert again.content_hash() == het_ensemble.content_hash()
        assert again.row_hash(1) == het_ensemble.row_hash(1)

    def test_mixed_profiles_rejected(self, hom_ensemble):
        other = generate_ensemble(
            get_scenario("section8-hom").spec.with_(n_tasks=6, p=4, n_instances=1)
        )
        mixed = hom_ensemble.materialize() + other.materialize()
        with pytest.raises(ValueError, match="ensembles_from_instances"):
            Ensemble.from_instances(mixed)
        groups = ensembles_from_instances(mixed)
        assert [len(g) for g in groups] == [5, 1]
        assert groups[0] == hom_ensemble

    def test_variant_ensembles(self):
        ensembles = generate_ensembles("scaling-stress", n_instances=2, seed=0)
        spec = get_scenario("scaling-stress").spec
        assert len(ensembles) == len(spec.variants())
        sizes = {(e.n_tasks, e.p) for e in ensembles}
        assert sizes == {(n, p) for n in (20, 40, 80) for p in (16, 32)}


class TestContentIdentity:
    def test_row_hash_matches_materialized_digest(self, het_ensemble):
        view = het_ensemble[2]
        chain, platform = view
        assert view.row_hash == instance_digest(
            chain.work, chain.output, platform.speeds, platform.failure_rates,
            platform.bandwidth, platform.link_failure_rate, platform.max_replication,
        )

    def test_row_hash_sensitivity(self):
        base = dict(work=[[1.0, 2.0]], output=[[1.0, 0.0]], speeds=[[1.0]],
                    failure_rates=[[0.0]])
        e = Ensemble(**base)
        variants = [
            Ensemble(**{**base, "work": [[1.0, 3.0]]}),
            Ensemble(**{**base, "speeds": [[2.0]]}),
            Ensemble(**base, bandwidth=2.0),
            Ensemble(**base, max_replication=2),
        ]
        hashes = {v.row_hash(0) for v in variants}
        assert e.row_hash(0) not in hashes and len(hashes) == 4

    def test_row_hash_stable_across_processes(self, hom_ensemble):
        """Row digests key the on-disk cache, so they must not depend
        on per-process hash salting."""
        here = hom_ensemble.row_hash(0)
        script = (
            "from repro.scenarios import generate_ensemble\n"
            "e = generate_ensemble('section8-hom', n_instances=5, seed=3)\n"
            "print(e.row_hash(0))\n"
        )
        import repro

        env = dict(os.environ)
        pkg_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
        there = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
        ).stdout.strip()
        assert here == there

    def test_content_hash_cached_and_stable(self, hom_ensemble):
        assert hom_ensemble.content_hash() == hom_ensemble.content_hash()
        again = generate_ensemble("section8-hom", n_instances=5, seed=3)
        assert again.content_hash() == hom_ensemble.content_hash()
        assert hash(again) == hash(hom_ensemble)


class TestModelHashCaching:
    """Platform/TaskChain digests are computed once per object."""

    def test_platform_hash_cached(self):
        platform = Platform(speeds=[1.0, 2.0], failure_rates=[1e-8, 1e-7])
        assert platform._hash is None
        first = hash(platform)
        assert platform._hash == first
        assert hash(platform) == first

    def test_chain_hash_cached(self):
        chain = TaskChain(work=[1.0, 2.0], output=[1.0, 0.0])
        assert chain._hash is None
        first = hash(chain)
        assert chain._hash == first
        assert hash(chain) == first

    def test_equal_objects_hash_equal(self):
        a = Platform(speeds=[1.0, 2.0], failure_rates=[1e-8, 1e-7])
        b = Platform(speeds=[1.0, 2.0], failure_rates=[1e-8, 1e-7])
        assert a == b and hash(a) == hash(b)


class TestSweepBitIdentity:
    """Acceptance: run_sweep over an Ensemble is bit-identical — same
    cache keys, same per-point results — to the materialized path."""

    BOUNDS = [(150.0, 750.0), (400.0, 750.0)]

    @pytest.mark.parametrize("scenario", ["section8-hom", "section8-het"])
    def test_same_results_and_cache_keys(self, scenario, tmp_path):
        ensemble = generate_ensemble(scenario, n_instances=4, seed=9)
        methods = [get_method("heur-l"), get_method("heur-p")]
        n_units = len(methods) * len(ensemble)

        cold = ResultCache(tmp_path)
        columnar = run_sweep(ensemble, methods, self.BOUNDS, cache=cold)
        assert cold.stats() == {
            "hits": 0, "misses": n_units, "puts": n_units, "corrupt": 0,
            "hit_rate": 0.0,
        }

        warm = ResultCache(tmp_path)
        materialized = run_sweep(
            ensemble.materialize(), methods, self.BOUNDS, cache=warm
        )
        # Zero misses: the materialized twin derived the very same keys.
        assert warm.stats() == {
            "hits": n_units, "misses": 0, "puts": 0, "corrupt": 0,
            "hit_rate": 1.0,
        }
        assert np.array_equal(columnar.solved, materialized.solved)
        assert np.array_equal(columnar.failure, materialized.failure)
        assert np.array_equal(
            columnar.objective_values, materialized.objective_values
        )

    def test_parallel_shards_match_serial(self):
        ensemble = generate_ensemble("section8-hom", n_instances=6, seed=2)
        methods = [get_method("heur-l"), get_method("heur-p")]
        serial = run_sweep(ensemble, methods, self.BOUNDS, jobs=1)
        sharded = run_sweep(ensemble, methods, self.BOUNDS, jobs=3)
        assert np.array_equal(serial.solved, sharded.solved)
        assert np.array_equal(serial.failure, sharded.failure)
        assert np.array_equal(serial.objective_values, sharded.objective_values)

    def test_warm_sweep_materializes_nothing(self, tmp_path):
        """The columnar payoff: a fully cached sweep never builds a
        TaskChain or Platform."""
        ensemble = generate_ensemble("section8-hom", n_instances=3, seed=4)
        methods = [get_method("heur-l")]
        run_sweep(ensemble, methods, self.BOUNDS, cache=ResultCache(tmp_path))

        fresh = generate_ensemble("section8-hom", n_instances=3, seed=4)
        run_sweep(fresh, methods, self.BOUNDS, cache=ResultCache(tmp_path))
        assert fresh._chains == [None] * 3
        assert fresh._platforms == [None]

    def test_het_only_method_error_matches_problem_path(self, het_ensemble):
        with pytest.raises(ValueError, match="requires homogeneous platforms"):
            run_sweep(het_ensemble, [get_method("pareto-dp")], self.BOUNDS)


class TestObjectiveQuantiles:
    def test_quantiles_shape_and_monotonicity(self):
        ensemble = generate_ensemble("section8-hom", n_instances=5, seed=6)
        sweep = run_sweep(
            ensemble, [get_method("heur-l")],
            [(100.0, 750.0), (250.0, 750.0), (400.0, 750.0)],
        )
        q = sweep.objective_quantiles("heur-l")
        assert q.shape == (3, 3)
        solved_pts = sweep.counts("heur-l") > 0
        finite = q[:, solved_pts]
        assert np.all(np.isfinite(finite))
        assert np.all(finite[0] <= finite[1]) and np.all(finite[1] <= finite[2])
        # Reliability objective: quantiles are probabilities.
        assert np.all((finite >= 0.0) & (finite <= 1.0))

    def test_empty_points_are_nan(self):
        ensemble = generate_ensemble("section8-hom", n_instances=2, seed=6)
        sweep = run_sweep(ensemble, [get_method("heur-l")], [(0.001, 0.001)])
        assert sweep.counts("heur-l")[0] == 0
        assert np.all(np.isnan(sweep.objective_quantiles("heur-l")))

    def test_converse_objective_values(self):
        spec = get_scenario("section8-hom").spec.with_(
            n_instances=3, n_tasks=6, p=4
        )
        sweep = run_sweep(
            spec, [get_method("dp-period")], [(500.0, 750.0)],
            objective="period", min_reliability=0.25,
        )
        assert sweep.objective == "period"
        q = sweep.objective_quantiles("dp-period", quantiles=(0.5,))
        assert q.shape == (1, 1) and np.isfinite(q[0, 0]) and q[0, 0] > 0

    def test_bad_quantiles_rejected(self):
        ensemble = generate_ensemble("section8-hom", n_instances=2, seed=6)
        sweep = run_sweep(ensemble, [get_method("heur-l")], [(250.0, 750.0)])
        with pytest.raises(ValueError, match="quantiles must lie"):
            sweep.objective_quantiles("heur-l", quantiles=(1.5,))
