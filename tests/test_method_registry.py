"""The pluggable method registry: registration rules, capability
metadata, lookup errors, and the SweepResult unknown-method regression."""

import pytest

from repro.algorithms.result import SolveResult
from repro.experiments import (
    METHODS,
    Method,
    UnknownMethodError,
    get_method,
    heterogeneous_suite,
    homogeneous_suite,
    register_method,
    run_sweep,
)


@pytest.fixture
def scratch_registry():
    """Let a test register methods and roll the registry back after."""
    before = dict(METHODS)
    yield METHODS
    METHODS.clear()
    METHODS.update(before)


class TestRegistration:
    def test_decorator_registers_and_returns_method(self, scratch_registry):
        @register_method("null-method", exact=False, cost_hint=0.5)
        def solve(problem):
            return SolveResult(feasible=False, method="null-method")

        assert isinstance(solve, Method)
        assert get_method("null-method") is solve
        assert solve.cost_hint == 0.5

    def test_duplicate_name_rejected(self, scratch_registry):
        with pytest.raises(ValueError, match="already registered"):
            register_method("heur-l")(lambda problem: None)

    def test_replace_opt_in(self, scratch_registry):
        original = get_method("heur-l")
        replaced = register_method("heur-l", replace=True)(original.solve)
        assert get_method("heur-l") is replaced

    def test_bad_names_rejected(self):
        with pytest.raises(ValueError, match="non-empty string"):
            register_method("")
        with pytest.raises(ValueError, match="non-empty string"):
            register_method(None)


class TestLookup:
    def test_get_method_raises_helpful_keyerror(self):
        """The error is a KeyError and lists every known method."""
        with pytest.raises(KeyError, match="unknown method 'nope'") as exc:
            get_method("nope")
        for name in METHODS:
            assert name in str(exc.value)

    def test_lookup_error_is_also_valueerror(self):
        # Backward compatibility: callers catching ValueError still work.
        with pytest.raises(ValueError, match="unknown method"):
            get_method("nope")
        assert issubclass(UnknownMethodError, KeyError)
        assert issubclass(UnknownMethodError, ValueError)


class TestCapabilities:
    def test_builtin_metadata(self):
        assert get_method("ilp").exact and get_method("ilp").homogeneous_only
        assert get_method("pareto-dp").exact
        assert not get_method("heur-l").exact
        assert get_method("ilp").cost_hint > get_method("heur-l").cost_hint
        assert get_method("anneal").seeded

    def test_hom_only_refuses_het_platform(self):
        pair = heterogeneous_suite(n_instances=1, seed=0)[0]
        with pytest.raises(ValueError, match="requires homogeneous platforms"):
            get_method("ilp").check_platform(pair.het_platform)
        # The error names the method and suggests alternatives.
        with pytest.raises(ValueError, match="heur-l"):
            get_method("pareto-dp").check_platform(pair.het_platform)
        # Homogeneous platforms pass; any platform passes for heuristics.
        get_method("ilp").check_platform(pair.hom_platform)
        get_method("heur-l").check_platform(pair.het_platform)

    def test_run_sweep_rejects_het_up_front(self):
        pair = heterogeneous_suite(n_instances=1, seed=0)[0]
        with pytest.raises(ValueError, match="requires homogeneous platforms"):
            run_sweep(
                [(pair.chain, pair.het_platform)],
                [get_method("pareto-dp")],
                [(50.0, 100.0)],
            )


class TestFingerprints:
    """Cache keys and the worker handshake pair a method's name with an
    implementation fingerprint — names alone don't identify code."""

    def test_different_code_different_fingerprint(self):
        a = Method("m", lambda problem: None, exact=False, homogeneous_only=False)
        b = Method("m", lambda problem: 1 + 1, exact=False, homogeneous_only=False)
        assert a.fingerprint() != b.fingerprint()

    def test_same_code_different_captures(self):
        # heur-l and heur-p share one closure body; only the captured
        # strings differ — the fingerprint must still tell them apart.
        assert get_method("heur-l").fingerprint() != get_method("heur-p").fingerprint()

    def test_stable_across_calls_and_mutable_state(self):
        state = {"n": 0}

        def solve(problem):
            state["n"] += 1

        m = Method("counted", solve, exact=False, homogeneous_only=False)
        before = m.fingerprint()
        state["n"] = 99  # runtime state must not churn the key
        assert m.fingerprint() == before


class TestSweepResultErrors:
    """Regression: unknown method names in SweepResult helpers raise a
    descriptive UnknownMethodError, not a bare ValueError from _idx."""

    @pytest.fixture(scope="class")
    def sweep(self):
        suite = homogeneous_suite(n_instances=2, seed=13)
        return run_sweep(
            suite, [get_method("heur-l"), get_method("heur-p")], [(200.0, 750.0)]
        )

    def test_counts_unknown_method(self, sweep):
        with pytest.raises(UnknownMethodError, match="not in sweep") as exc:
            sweep.counts("ilp")
        assert "heur-l" in str(exc.value) and "heur-p" in str(exc.value)

    def test_average_failure_unknown_method(self, sweep):
        with pytest.raises(KeyError, match="'no-such-method' not in sweep"):
            sweep.average_failure("no-such-method")

    def test_known_method_still_works(self, sweep):
        assert sweep.counts("heur-l").shape == (1,)
