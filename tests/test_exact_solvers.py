"""Cross-validation of the exact tri-criteria solvers: brute force,
Pareto DP, and the Section 5.4 ILP on both backends.

The validation chain of DESIGN.md: all four must agree on feasibility
and optimal reliability on common instances."""


import numpy as np
import pytest

from repro.algorithms import (
    brute_force_best,
    heuristic_best,
    ilp_best,
    optimize_reliability,
    optimize_reliability_period,
    pareto_dp_best,
)
from repro.core import Platform, TaskChain, random_chain


def hom_platform(p, K):
    return Platform.homogeneous_platform(
        p, failure_rate=1e-8, link_failure_rate=1e-5, max_replication=K
    )


class TestParetoDP:
    def test_reduces_to_algorithm1_without_bounds(self):
        chain = random_chain(7, rng=0)
        plat = hom_platform(5, 3)
        a1 = optimize_reliability(chain, plat)
        pd = pareto_dp_best(chain, plat)
        assert pd.log_reliability == pytest.approx(a1.log_reliability, rel=1e-12)

    def test_reduces_to_algorithm2_with_period_only(self):
        chain = random_chain(7, rng=1)
        plat = hom_platform(5, 3)
        for P in (80.0, 150.0, 300.0):
            a2 = optimize_reliability_period(chain, plat, max_period=P)
            pd = pareto_dp_best(chain, plat, max_period=P)
            assert a2.feasible == pd.feasible
            if a2.feasible:
                assert pd.log_reliability == pytest.approx(
                    a2.log_reliability, rel=1e-12
                )

    def test_latency_bound_infeasible_below_compute(self):
        chain = TaskChain([10.0, 10.0], [1.0, 0.0])
        plat = hom_platform(4, 2)
        res = pareto_dp_best(chain, plat, max_latency=19.0)
        assert not res.feasible

    def test_latency_bound_changes_structure(self):
        # Generous latency: split (period-friendly); tight latency: merge.
        chain = TaskChain([5.0, 5.0], [8.0, 0.0])
        plat = hom_platform(4, 2)
        loose = pareto_dp_best(chain, plat, max_period=10.0, max_latency=30.0)
        tight = pareto_dp_best(chain, plat, max_period=10.0, max_latency=12.0)
        assert loose.feasible and tight.feasible
        assert tight.mapping.m == 1
        # The tight solution sacrifices reliability.
        assert tight.log_reliability <= loose.log_reliability

    def test_rejects_heterogeneous(self):
        plat = Platform([1.0, 2.0], [1e-8, 1e-8], max_replication=1)
        with pytest.raises(ValueError, match="homogeneous"):
            pareto_dp_best(TaskChain([1.0], [0.0]), plat)

    def test_rejects_nonpositive_bounds(self):
        chain = TaskChain([1.0], [0.0])
        with pytest.raises(ValueError):
            pareto_dp_best(chain, hom_platform(1, 1), max_period=0.0)


class TestILP:
    def test_simple_instance(self):
        chain = TaskChain([6.0, 6.0], [4.0, 0.0])
        plat = hom_platform(4, 2)
        res = ilp_best(chain, plat, max_period=7.0, max_latency=17.0)
        assert res.feasible
        assert res.mapping.m == 2
        assert res.evaluation.worst_case_period <= 7.0

    def test_infeasible_period(self):
        chain = TaskChain([10.0], [0.0])
        plat = hom_platform(2, 2)
        res = ilp_best(chain, plat, max_period=5.0)
        assert not res.feasible

    def test_backends_agree(self):
        chain = random_chain(6, rng=12)
        plat = hom_platform(5, 2)
        hi = ilp_best(chain, plat, max_period=200.0, max_latency=700.0)
        bb = ilp_best(
            chain, plat, max_period=200.0, max_latency=700.0, backend="branch-bound"
        )
        assert hi.feasible == bb.feasible
        if hi.feasible:
            assert hi.log_reliability == pytest.approx(bb.log_reliability, rel=1e-9)

    def test_latency_terms_paper_is_looser(self):
        # Dropping the comm terms from the latency constraint can only
        # enlarge the feasible set.
        chain = random_chain(6, rng=13)
        plat = hom_platform(5, 2)
        for L in (400.0, 500.0, 600.0):
            full = ilp_best(chain, plat, max_latency=L, latency_terms="full")
            paper = ilp_best(chain, plat, max_latency=L, latency_terms="paper")
            assert (not full.feasible) or paper.feasible
            if full.feasible and paper.feasible:
                assert paper.log_reliability >= full.log_reliability - 1e-18

    def test_rejects_heterogeneous(self):
        plat = Platform([1.0, 2.0], [1e-8, 1e-8], max_replication=1)
        with pytest.raises(ValueError, match="homogeneous"):
            ilp_best(TaskChain([1.0], [0.0]), plat)

    def test_rejects_unknown_backend(self):
        chain = TaskChain([1.0], [0.0])
        with pytest.raises(ValueError, match="backend"):
            ilp_best(chain, hom_platform(1, 1), backend="cplex")

    def test_rejects_unknown_latency_terms(self):
        chain = TaskChain([1.0], [0.0])
        with pytest.raises(ValueError, match="latency_terms"):
            ilp_best(chain, hom_platform(1, 1), latency_terms="typo")


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(15))
    def test_all_exact_methods_agree(self, seed):
        rng = np.random.default_rng(1000 + seed)
        n = int(rng.integers(2, 6))
        p = int(rng.integers(1, 5))
        K = int(rng.integers(1, 4))
        chain = random_chain(n, rng)
        plat = hom_platform(p, K)
        P = float(rng.uniform(30, 400))
        L = float(rng.uniform(100, 900))

        bf = brute_force_best(chain, plat, max_period=P, max_latency=L)
        pd = pareto_dp_best(chain, plat, max_period=P, max_latency=L)
        hi = ilp_best(chain, plat, max_period=P, max_latency=L)

        assert bf.feasible == pd.feasible == hi.feasible
        if bf.feasible:
            assert pd.log_reliability == pytest.approx(bf.log_reliability, rel=1e-9)
            assert hi.log_reliability == pytest.approx(bf.log_reliability, rel=1e-6)

    @pytest.mark.parametrize("seed", range(8))
    def test_heuristics_never_beat_exact(self, seed):
        rng = np.random.default_rng(2000 + seed)
        n = int(rng.integers(2, 6))
        p = int(rng.integers(2, 5))
        chain = random_chain(n, rng)
        plat = hom_platform(p, 2)
        P = float(rng.uniform(50, 400))
        L = float(rng.uniform(150, 900))
        exact = pareto_dp_best(chain, plat, max_period=P, max_latency=L)
        heur = heuristic_best(chain, plat, max_period=P, max_latency=L)
        # Heuristic feasibility implies exact feasibility, and the exact
        # optimum dominates.
        assert (not heur.feasible) or exact.feasible
        if heur.feasible:
            assert exact.log_reliability >= heur.log_reliability - 1e-15
