"""Shared test fixtures.

Every ``repro scenario run`` / ``repro experiment`` invocation writes a
run-ledger directory (``$REPRO_RUNS_DIR``, default ``./runs``) — point
it at a per-test temporary directory so CLI tests never litter the
working tree, and so each test observes only its own runs.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_runs_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
