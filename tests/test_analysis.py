"""Tests for :mod:`repro.analysis` — the invariant checkers behind
``repro lint``.

The fixture corpus under ``tests/lint_fixtures/`` carries its own
expectations as comments (see its README): every ``*_bad`` fixture
must produce exactly its marked findings, every ``*_good`` twin must
lint clean.  On top of the corpus: the shipped tree itself must lint
clean, deleting a cache-key ingredient from the real cache module must
light up the completeness checker (the acceptance drill for KEY001),
waivers must round-trip, and the JSON report must be byte-identical
across reruns.
"""

import json
import pathlib
import re
import shutil

import pytest

from repro import cli
from repro.analysis import RULES, render_json, render_text, run_lint

FIXTURES = pathlib.Path(__file__).resolve().parent / "lint_fixtures"
REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

# Expectation markers (documented in lint_fixtures/README.md).
_EXPECT_AT = re.compile(r"#\s*repro-lint-expect-at:\s*([A-Z0-9]+)@(\d+)")
_EXPECT_NEXT = re.compile(r"^\s*#\s*repro-lint-expect-next:\s*([A-Z0-9,]+)")
_EXPECT_INLINE = re.compile(r"#\s*repro-lint-expect:\s*([A-Z0-9,]+)")


def expected_findings(path: pathlib.Path, display: str) -> set:
    """Parse a fixture's expectation markers into (path, line, rule)."""
    out = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_AT.search(line)
        if match:
            out.add((display, int(match.group(2)), match.group(1)))
            continue
        match = _EXPECT_NEXT.match(line)
        if match:
            out.update(
                (display, lineno + 1, rule)
                for rule in match.group(1).split(",")
            )
            continue
        match = _EXPECT_INLINE.search(line)
        if match:
            out.update(
                (display, lineno, rule) for rule in match.group(1).split(",")
            )
    return out


def corpus_cases() -> list:
    cases = [p.name for p in FIXTURES.iterdir() if p.suffix == ".py"]
    cases += [p.name for p in FIXTURES.iterdir() if p.is_dir()]
    assert cases, f"fixture corpus missing at {FIXTURES}"
    return sorted(cases)


def case_files(target: pathlib.Path) -> list:
    return [target] if target.is_file() else sorted(target.rglob("*.py"))


@pytest.mark.parametrize("case", corpus_cases())
def test_fixture_corpus(case):
    """Each fixture produces exactly the findings its markers declare."""
    target = FIXTURES / case
    findings = run_lint([target], root=FIXTURES)
    got = {(f.path, f.line, f.rule) for f in findings}
    expected = set()
    for path in case_files(target):
        display = path.relative_to(FIXTURES).as_posix()
        expected |= expected_findings(path, display)
    assert got == expected
    if case.endswith("_good.py") or case.endswith("_good"):
        assert not expected, f"good fixture {case} must carry no markers"


def test_every_rule_has_a_triggering_fixture():
    """The corpus demonstrates all 16 rules, and the catalog names them."""
    triggered = set()
    for case in corpus_cases():
        for path in case_files(FIXTURES / case):
            triggered |= {rule for _, _, rule in expected_findings(path, "")}
    assert triggered == set(RULES)
    for rule, description in RULES.items():
        assert re.fullmatch(r"[A-Z]+\d{3}", rule)
        assert description


def test_shipped_tree_is_clean():
    """``repro lint`` over the real source tree finds nothing unwaived."""
    assert run_lint([REPO_ROOT / "src"], root=REPO_ROOT) == []


def test_deleting_cache_ingredient_is_caught(tmp_path):
    """The ISSUE acceptance drill: drop the ``"objective"`` ingredient
    from the real ``experiments/cache.py`` and the completeness checker
    must light up every now-uncovered read on the solve path."""
    shutil.copytree(REPO_ROOT / "src" / "repro", tmp_path / "repro")
    cache = tmp_path / "repro" / "experiments" / "cache" / "__init__.py"
    text = cache.read_text()
    lines = [l for l in text.splitlines() if '"objective": objective' not in l]
    assert len(lines) == len(text.splitlines()) - 1, (
        "expected exactly one objective-ingredient line in the cache package"
    )
    cache.write_text("\n".join(lines) + "\n")
    findings = run_lint([tmp_path], root=tmp_path)
    key001 = [f for f in findings if f.rule == "KEY001"]
    assert key001, "deleting the objective ingredient must trigger KEY001"
    assert all("objective" in f.message for f in key001)
    assert {f.rule for f in findings} == {"KEY001"}


def test_waiver_round_trip(tmp_path):
    """A justified waiver suppresses its finding; stripping the reason
    turns it into WAIVE001 and un-suppresses the original finding."""
    source = FIXTURES / "waiver_good.py"
    assert run_lint([source], root=FIXTURES) == []
    stripped = re.sub(r"(disable=DET001)[^\n]*", r"\1", source.read_text())
    bad = tmp_path / "waiver_stripped.py"
    bad.write_text(stripped)
    rules = [f.rule for f in run_lint([bad], root=tmp_path)]
    assert rules.count("WAIVE001") == 2
    assert rules.count("DET001") == 2


def test_rules_subset_filters_and_skips_waiver_audit():
    full = run_lint([FIXTURES / "waiver_unused_bad.py"], root=FIXTURES)
    assert {f.rule for f in full} == {"WAIVE002"}
    subset = run_lint(
        [FIXTURES / "waiver_unused_bad.py"], rules=["DET001"], root=FIXTURES
    )
    assert subset == []  # waiver audit only runs on full runs
    only_det = run_lint(
        [FIXTURES / "det_env_bad.py"], rules=["DET003"], root=FIXTURES
    )
    assert {f.rule for f in only_det} == {"DET003"}
    with pytest.raises(ValueError, match="unknown rule"):
        run_lint([FIXTURES / "det_env_bad.py"], rules=["NOPE123"])


def test_json_report_schema_and_determinism():
    findings = run_lint([FIXTURES / "det_clock_bad.py"], root=FIXTURES)
    first = render_json(findings)
    again = render_json(
        run_lint([FIXTURES / "det_clock_bad.py"], root=FIXTURES)
    )
    assert first == again  # byte-identical across reruns
    payload = json.loads(first)
    assert set(payload) == {"schema", "counts", "findings"}
    assert payload["schema"] == 1
    keys = [(f["path"], f["line"], f["rule"]) for f in payload["findings"]]
    assert keys == sorted(keys)
    assert sum(payload["counts"].values()) == len(payload["findings"])
    for entry in payload["findings"]:
        assert set(entry) == {"path", "line", "rule", "message"}


def test_text_report_mentions_every_finding():
    findings = run_lint([FIXTURES / "det_set_bad.py"], root=FIXTURES)
    report = render_text(findings)
    for f in findings:
        assert f"{f.path}:{f.line}: {f.rule}" in report
    assert f"{len(findings)} finding(s)" in report
    assert "no findings" in render_text([])


# -- CLI ------------------------------------------------------------------


def test_cli_lint_bad_fixture_json(capsys):
    rc = cli.main(
        ["lint", str(FIXTURES / "det_clock_bad.py"), "--format", "json"]
    )
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"DET001": 3}


def test_cli_lint_clean_fixture(capsys):
    rc = cli.main(["lint", str(FIXTURES / "det_clock_good.py")])
    assert rc == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_lint_rules_subset(capsys):
    rc = cli.main(
        [
            "lint",
            str(FIXTURES / "tel_span_bad.py"),
            "--rules",
            "TEL002",
            "--format",
            "json",
        ]
    )
    assert rc == 1
    assert set(json.loads(capsys.readouterr().out)["counts"]) == {"TEL002"}


def test_cli_lint_list_rules(capsys):
    rc = cli.main(["lint", "--list-rules"])
    assert rc == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


def test_cli_lint_output_file(tmp_path, capsys):
    out_file = tmp_path / "findings.json"
    rc = cli.main(
        [
            "lint",
            str(FIXTURES / "io_write_bad.py"),
            "--format",
            "json",
            "--output",
            str(out_file),
        ]
    )
    assert rc == 1
    on_disk = json.loads(out_file.read_text())
    assert json.loads(capsys.readouterr().out) == on_disk
    assert on_disk["counts"] == {"IO001": 2}


def test_cli_lint_missing_path():
    with pytest.raises(SystemExit):
        cli.main(["lint", "does/not/exist.py"])
