"""Tests for the two Section 7 selection readings and the forced-het
allocation mode (the Section 8.2 experiment semantics)."""


import numpy as np
import pytest

from repro.algorithms import heuristic_best
from repro.algorithms.heuristics import heuristic_candidates
from repro.core import Platform, TaskChain, random_chain, random_platform


def hom5(p=10):
    return Platform.homogeneous_platform(
        p, speed=5.0, failure_rate=1e-8, link_failure_rate=1e-5, max_replication=3
    )


class TestSelectionRules:
    def test_rules_coincide_without_bounds(self):
        chain = random_chain(8, rng=0)
        plat = hom5()
        a = heuristic_best(chain, plat, selection="feasible-best")
        b = heuristic_best(chain, plat, selection="best-then-check")
        assert a.feasible and b.feasible
        assert a.log_reliability == pytest.approx(b.log_reliability, rel=1e-12)

    def test_best_then_check_can_lose_feasible_solutions(self):
        """On a hom platform with Algo-Alloc, the most reliable division
        is the single interval; under a tight period bound it is
        infeasible while a split division passes — best-then-check must
        report infeasible where feasible-best succeeds."""
        chain = TaskChain([10.0, 10.0], [1.0, 0.0])
        # Unreliable links make the unsplit division the reliability
        # winner (no communications), but its period (20) violates P.
        plat = Platform.homogeneous_platform(
            4, failure_rate=1e-6, link_failure_rate=1e-2, max_replication=2
        )
        P = 12.0  # single interval period = 20 > P; split = 10 <= P
        feasible = heuristic_best(
            chain, plat, max_period=P, selection="feasible-best"
        )
        paperish = heuristic_best(
            chain, plat, max_period=P, selection="best-then-check"
        )
        assert feasible.feasible
        assert not paperish.feasible

    def test_het_allocation_mode_restores_agreement(self):
        """With allocation='het' the period filter removes the
        infeasible division before selection, so best-then-check
        succeeds again (the Section 8.2 code path)."""
        chain = TaskChain([10.0, 10.0], [1.0, 0.0])
        plat = Platform.homogeneous_platform(
            4, failure_rate=1e-6, link_failure_rate=1e-2, max_replication=2
        )
        res = heuristic_best(
            chain,
            plat,
            max_period=12.0,
            selection="best-then-check",
            allocation="het",
        )
        assert res.feasible
        assert res.evaluation.worst_case_period <= 12.0 + 1e-9

    def test_feasible_best_dominates_best_then_check(self):
        rng = np.random.default_rng(5)
        for _ in range(6):
            chain = random_chain(8, rng)
            plat = random_platform(6, rng)
            P = float(rng.uniform(20, 80))
            L = float(rng.uniform(80, 300))
            fb = heuristic_best(
                chain, plat, max_period=P, max_latency=L, selection="feasible-best"
            )
            bc = heuristic_best(
                chain, plat, max_period=P, max_latency=L, selection="best-then-check"
            )
            # best-then-check feasibility implies feasible-best
            # feasibility, never the other way around.
            assert (not bc.feasible) or fb.feasible
            if bc.feasible:
                assert fb.log_reliability >= bc.log_reliability - 1e-15

    def test_unknown_selection_rejected(self):
        chain = TaskChain([1.0], [0.0])
        with pytest.raises(ValueError, match="selection"):
            heuristic_best(chain, hom5(2), selection="coin-flip")

    def test_unknown_allocation_rejected(self):
        chain = TaskChain([1.0], [0.0])
        with pytest.raises(ValueError, match="allocation"):
            heuristic_candidates(chain, hom5(2), "heur-p", allocation="magic")


class TestForcedHetAllocation:
    def test_het_mode_respects_period_on_hom(self):
        chain = random_chain(6, rng=7)
        plat = hom5(8)
        P = 60.0
        cands = heuristic_candidates(
            chain, plat, "heur-p", max_period=P, allocation="het"
        )
        for cand in cands:
            if cand.mapping is not None:
                ev = cand.evaluation
                assert max(ev.worst_case_costs) <= P + 1e-9

    def test_auto_mode_ignores_period_in_allocation(self):
        # Algo-Alloc allocates regardless; the bound check happens after.
        chain = TaskChain([100.0], [0.0])
        plat = hom5(3)
        cands = heuristic_candidates(
            chain, plat, "heur-p", max_period=1.0, allocation="auto"
        )
        assert cands[0].mapping is not None
        assert not cands[0].feasible

    def test_het_mode_fails_unhostable_division(self):
        chain = TaskChain([100.0], [0.0])
        plat = hom5(3)
        cands = heuristic_candidates(
            chain, plat, "heur-p", max_period=1.0, allocation="het"
        )
        assert cands[0].mapping is None
