"""Auto-derived (P, L) bounds grids: monotone sweeps that cross the
feasibility transition, for scenarios and raw ensembles alike."""

import numpy as np
import pytest

from repro.experiments import get_method, run_sweep
from repro.scenarios import materialize_instances, get_scenario
from repro.solve import derive_bounds_grid


@pytest.fixture(scope="module")
def tiny_hom_grid():
    return derive_bounds_grid("section8-hom", n_points=5, n_instances=6)


class TestDerivation:
    def test_grid_shape_and_monotonicity(self, tiny_hom_grid):
        g = tiny_hom_grid
        assert len(g.periods) == len(g.latencies) == len(g.quantiles) == 5
        assert list(g.periods) == sorted(g.periods)
        assert list(g.latencies) == sorted(g.latencies)
        assert g.max_period >= g.periods[-1]
        assert g.max_latency >= g.latencies[-1]
        assert g.n_instances == 6

    def test_grid_spans_the_transition(self, tiny_hom_grid):
        """The low end sits at the analytic lower bound (hard), the
        high end at the unbounded-solve max (certainly feasible)."""
        instances = materialize_instances(
            get_scenario("section8-hom").spec.with_(n_instances=6)
        )
        lo = min(float(np.max(c.work)) / float(np.max(p.speeds)) for c, p in instances)
        assert tiny_hom_grid.periods[0] == pytest.approx(lo)
        assert tiny_hom_grid.periods[-1] > 2 * tiny_hom_grid.periods[0]

    def test_deterministic(self):
        a = derive_bounds_grid("section8-hom", n_points=4, n_instances=3)
        b = derive_bounds_grid("section8-hom", n_points=4, n_instances=3)
        assert a == b

    def test_explicit_instances_and_quantiles(self):
        instances = materialize_instances(
            get_scenario("section8-hom").spec.with_(n_instances=4, n_tasks=6, p=4)
        )
        g = derive_bounds_grid(instances, quantiles=(0.0, 0.5, 1.0))
        assert g.quantiles == (0.0, 0.5, 1.0)
        assert len(g.periods) == 3

    def test_paired_scenario_uses_het_side(self):
        g = derive_bounds_grid("section8-het", n_points=3, n_instances=3)
        assert g.n_instances == 3

    def test_sweeps(self, tiny_hom_grid):
        g = tiny_hom_grid
        period_sweep = g.sweep("period")
        assert [P for P, _ in period_sweep] == list(g.periods)
        assert all(L == g.max_latency for _, L in period_sweep)
        latency_sweep = g.sweep("latency")
        assert [L for _, L in latency_sweep] == list(g.latencies)
        assert g.xs("period") == list(g.periods)
        with pytest.raises(ValueError, match="unknown sweep axis"):
            g.sweep("both")

    def test_describe_is_json_ready(self, tiny_hom_grid):
        import json

        record = tiny_hom_grid.describe()
        assert json.loads(json.dumps(record)) == record
        assert record["method"] == "heuristic"

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 2 grid points"):
            derive_bounds_grid("section8-hom", n_points=1, n_instances=2)
        with pytest.raises(ValueError, match="quantiles must lie"):
            derive_bounds_grid("section8-hom", quantiles=(0.5, 1.5), n_instances=2)
        with pytest.raises(ValueError, match="margin"):
            derive_bounds_grid("section8-hom", margin=0.5, n_instances=2)
        with pytest.raises(ValueError, match="at least one instance"):
            derive_bounds_grid([])


class TestPaperStyleCurves:
    def test_counts_rise_across_the_grid(self):
        """The acceptance shape: a multi-point sweep over a derived
        grid produces a non-decreasing solution-count curve ending at
        the full ensemble."""
        spec = get_scenario("section8-hom").spec.with_(n_instances=6)
        instances = materialize_instances(spec)
        grid = derive_bounds_grid(instances, n_points=5)
        sweep = run_sweep(
            instances,
            [get_method("heur-p")],
            grid.sweep("period"),
            xs=grid.xs("period"),
        )
        counts = sweep.counts("heur-p")
        assert counts.shape == (5,)
        assert all(a <= b for a, b in zip(counts, counts[1:]))
        assert counts[-1] == len(instances)  # everyone's own solution fits
        assert counts[0] < len(instances)  # the low end is genuinely hard
