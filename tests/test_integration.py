"""Cross-module integration tests: the full validation chain of DESIGN.md
exercised end to end on shared instances."""


import numpy as np
import pytest

from repro import (
    Platform,
    evaluate_mapping,
    heuristic_best,
    ilp_best,
    optimize_reliability,
    pareto_dp_best,
    random_chain,
    random_platform,
)
from repro.core.evaluation import mapping_log_reliability
from repro.extensions import compare_routing, mapping_energy
from repro.rbd import (
    estimate_log_reliability,
    exact_log_reliability_factoring,
    rbd_with_routing,
    series_parallel_log_reliability,
)
from repro.simulation import simulate_mapping


@pytest.fixture(scope="module")
def paper_scale_instance():
    chain = random_chain(15, rng=123)
    platform = Platform.homogeneous_platform(
        10, failure_rate=1e-8, link_failure_rate=1e-5, max_replication=3
    )
    return chain, platform


class TestSolverPipelineOnPaperScale:
    def test_exact_methods_agree_at_n15(self, paper_scale_instance):
        chain, platform = paper_scale_instance
        P, L = 250.0, 900.0
        ilp = ilp_best(chain, platform, max_period=P, max_latency=L)
        dp = pareto_dp_best(chain, platform, max_period=P, max_latency=L)
        assert ilp.feasible == dp.feasible
        if ilp.feasible:
            assert ilp.log_reliability == pytest.approx(
                dp.log_reliability, rel=1e-6
            )

    def test_heuristic_within_exact(self, paper_scale_instance):
        chain, platform = paper_scale_instance
        P, L = 250.0, 900.0
        exact = pareto_dp_best(chain, platform, max_period=P, max_latency=L)
        heur = heuristic_best(chain, platform, max_period=P, max_latency=L)
        assert (not heur.feasible) or exact.feasible
        if heur.feasible:
            assert exact.log_reliability >= heur.log_reliability - 1e-15
            ev = heur.evaluation
            assert ev.worst_case_period <= P + 1e-9
            assert ev.worst_case_latency <= L + 1e-9

    def test_algorithm1_upper_bounds_everything(self, paper_scale_instance):
        chain, platform = paper_scale_instance
        unconstrained = optimize_reliability(chain, platform)
        constrained = pareto_dp_best(
            chain, platform, max_period=250.0, max_latency=900.0
        )
        if constrained.feasible:
            assert unconstrained.log_reliability >= constrained.log_reliability - 1e-15


class TestRBDChainOnSolvedMappings:
    """Take a mapping produced by a *solver* and push it through every
    RBD evaluator — the representations must tell one story."""

    @pytest.fixture(scope="class")
    def solved_mapping(self):
        chain = random_chain(5, rng=77)
        platform = Platform.homogeneous_platform(
            6, failure_rate=1e-3, link_failure_rate=1e-3, max_replication=2
        )
        return optimize_reliability(chain, platform).mapping

    def test_eq9_vs_routed_rbd(self, solved_mapping):
        want = mapping_log_reliability(solved_mapping)
        rbd = rbd_with_routing(solved_mapping)
        assert series_parallel_log_reliability(rbd) == pytest.approx(want, rel=1e-10)
        assert exact_log_reliability_factoring(rbd) == pytest.approx(want, rel=1e-10)

    def test_monte_carlo_consistent(self, solved_mapping):
        rbd = rbd_with_routing(solved_mapping)
        want = mapping_log_reliability(solved_mapping)
        est = estimate_log_reliability(rbd, trials=30_000, rng=5)
        assert est.consistent_with(want)

    def test_routing_comparison_on_solver_output(self, solved_mapping):
        cmp = compare_routing(solved_mapping)
        assert cmp.routing_penalty >= 1.0
        assert cmp.n_minimal_cuts >= solved_mapping.m

    def test_simulator_agrees_with_eq9(self, solved_mapping):
        summary = simulate_mapping(solved_mapping, n_datasets=3000, rng=3)
        assert summary.reliability_consistent


class TestHeterogeneousEndToEnd:
    def test_full_het_flow(self):
        rng = np.random.default_rng(2024)
        chain = random_chain(10, rng)
        platform = random_platform(8, rng)
        res = heuristic_best(chain, platform, max_period=60.0, max_latency=250.0)
        if not res.feasible:
            pytest.skip("random instance infeasible at these bounds")
        mapping = res.mapping
        ev = res.evaluation
        # Evaluation consistent with a fresh one.
        again = evaluate_mapping(mapping)
        assert again.log_reliability == pytest.approx(ev.log_reliability, rel=1e-12)
        # Energy metric is positive and grows with replication level.
        energy = mapping_energy(mapping)
        assert energy > 0
        # The routed RBD agrees with Eq. (9) on het platforms too.
        rbd = rbd_with_routing(mapping)
        assert series_parallel_log_reliability(rbd) == pytest.approx(
            ev.log_reliability, rel=1e-9
        )

    def test_het_simulation_matches_analytics(self):
        rng = np.random.default_rng(99)
        chain = random_chain(6, rng, work_range=(5, 20), output_range=(1, 4))
        platform = Platform(
            speeds=rng.uniform(1, 5, 6),
            failure_rates=[5e-3] * 6,
            bandwidth=1.0,
            link_failure_rate=1e-3,
            max_replication=2,
        )
        res = heuristic_best(chain, platform, max_period=40.0, max_latency=100.0)
        if not res.feasible:
            pytest.skip("random instance infeasible at these bounds")
        summary = simulate_mapping(res.mapping, n_datasets=4000, rng=8)
        assert summary.reliability_consistent


class TestDeterminism:
    """Everything downstream of a seed must be bit-for-bit reproducible."""

    def test_solvers_are_deterministic(self):
        chain = random_chain(8, rng=5)
        platform = Platform.homogeneous_platform(
            6, failure_rate=1e-8, link_failure_rate=1e-5, max_replication=3
        )
        a = pareto_dp_best(chain, platform, max_period=200.0, max_latency=700.0)
        b = pareto_dp_best(chain, platform, max_period=200.0, max_latency=700.0)
        assert a.mapping == b.mapping

    def test_simulation_deterministic_given_seed(self):
        chain = random_chain(4, rng=6, work_range=(5, 15))
        platform = Platform.homogeneous_platform(
            4, failure_rate=1e-2, link_failure_rate=1e-3, max_replication=2
        )
        mapping = optimize_reliability(chain, platform).mapping
        a = simulate_mapping(mapping, n_datasets=500, rng=42)
        b = simulate_mapping(mapping, n_datasets=500, rng=42)
        assert np.array_equal(
            a.run.completion_times, b.run.completion_times, equal_nan=True
        )

    def test_experiment_suites_deterministic(self):
        from repro.experiments import run_figure

        fa = run_figure("fig10", n_instances=3, grid="reduced", seed=1,
                        exact_method="pareto-dp")
        fb = run_figure("fig10", n_instances=3, grid="reduced", seed=1,
                        exact_method="pareto-dp")
        for key in fa.series:
            assert np.array_equal(fa.series[key], fb.series[key])
