"""Tests for the cross-check experiment module itself."""

import pytest

from repro.experiments.crosscheck import CrosscheckReport, run_crosscheck


class TestCrosscheck:
    def test_clean_on_seeded_population(self):
        report = run_crosscheck(n_instances=6, seed=3, simulate=False)
        assert report.instances == 6
        assert report.clean, report.summary()

    def test_simulation_branch(self):
        report = run_crosscheck(n_instances=3, seed=4, simulate=True)
        assert report.clean, report.summary()
        assert report.simulation_outliers <= 1

    def test_summary_format(self):
        report = CrosscheckReport(instances=2, solver_disagreements=1)
        text = report.summary()
        assert "2 instances" in text and "1 solver" in text
        assert not report.clean

    def test_deterministic(self):
        a = run_crosscheck(n_instances=4, seed=9, simulate=False)
        b = run_crosscheck(n_instances=4, seed=9, simulate=False)
        assert a.summary() == b.summary()

    def test_parallel_identical_to_serial(self):
        serial = run_crosscheck(n_instances=4, seed=9, simulate=False, jobs=1)
        fanout = run_crosscheck(n_instances=4, seed=9, simulate=False, jobs=4)
        assert serial == fanout

    def test_invalid_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_crosscheck(n_instances=1, simulate=False, jobs=0)
