"""The on-disk result cache: round-trips, stable keys, invalidation,
corruption recovery, and the zero-solve warm-run guarantee — exercised
against both storage backends, plus the deprecated ``get``/``put``
shims."""

import json
import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.core import Platform, TaskChain
from repro.experiments import Method, ResultCache, get_method, homogeneous_suite, run_sweep
from repro.experiments.cache import (
    CACHE_FORMAT,
    resolve_cache,
    unit_arrays,
    unit_record,
)
from repro.io import content_hash
from repro.solve import Problem

BOUNDS = [(100.0, 750.0), (300.0, 750.0)]

BACKENDS = ["files", "sqlite"]


def problems(chain, platform, bounds=BOUNDS):
    """The unit's Problem family, as run_sweep derives it."""
    return [Problem(chain, platform, P, L) for P, L in bounds]


@pytest.fixture(params=BACKENDS)
def cache(request, tmp_path):
    return ResultCache(tmp_path / "cache", backend=request.param)


@pytest.fixture(scope="module")
def instance():
    return homogeneous_suite(n_instances=1, seed=8)[0]


def put_unit(cache, key, solved, failure, objective_values=None, info=None):
    """Store a unit through the canonical record API."""
    cache.put_record(
        key, unit_record(solved, failure, objective_values, info=info)
    )


def get_unit(cache, key, n_points):
    """Look a unit up through the canonical record API."""
    record = cache.get_record(key, n_points=n_points)
    return None if record is None else unit_arrays(record, n_points)


def entry_keys(cache):
    return [key for key, _ in cache.backend.scan()]


def entry_text(cache, key):
    for k, text in cache.backend.scan():
        if k == key:
            return text
    return None


def plant_entry(cache, key, text):
    """Put raw entry text on disk (damage injection, stale formats) —
    ``store_text`` is the one backend-agnostic way to write bytes the
    record API would refuse."""
    cache.backend.store_text(key, text)


class TestRoundTrip:
    def test_put_get(self, cache):
        solved = np.array([True, False])
        failure = np.array([1.25e-4, 1.0])
        cache.put_record(
            "ab" * 32, unit_record(solved, failure, method_name="heur-l")
        )
        got = get_unit(cache, "ab" * 32, 2)
        assert got is not None
        assert np.array_equal(got[0], solved)
        # Floats survive JSON exactly (shortest-round-trip repr).
        assert np.array_equal(got[1], failure)
        assert cache.stats() == {
            "hits": 1, "misses": 0, "puts": 1, "corrupt": 0, "hit_rate": 1.0,
        }

    def test_miss_on_absent_key(self, cache):
        assert cache.get_record("cd" * 32, n_points=2) is None
        assert cache.misses == 1
        assert cache.corrupt == 0  # absent is a plain miss, not damage

    def test_info_round_trips_and_defaults_none(self, cache):
        solved = np.array([True])
        failure = np.array([0.5])
        put_unit(cache, "aa" * 32, solved, failure,
                 info={"probes": 7, "converged": True})
        put_unit(cache, "bb" * 32, solved, failure)
        assert get_unit(cache, "aa" * 32, 1)[3] == {"probes": 7, "converged": True}
        assert get_unit(cache, "bb" * 32, 1)[3] is None
        # Entries without info omit the field entirely (byte-identity of
        # the batched and per-row write paths for detail-free methods).
        assert "info" not in json.loads(entry_text(cache, "bb" * 32))

    def test_hit_rate_and_reset(self, cache):
        assert cache.stats()["hit_rate"] is None  # no lookups yet
        put_unit(cache, "ab" * 32, np.array([True]), np.array([0.5]))
        get_unit(cache, "ab" * 32, 1)
        get_unit(cache, "cd" * 32, 1)
        get_unit(cache, "ef" * 32, 1)
        stats = cache.stats()
        assert stats["hit_rate"] == pytest.approx(1 / 3)
        cache.reset()
        assert cache.stats() == {
            "hits": 0, "misses": 0, "puts": 0, "corrupt": 0, "hit_rate": None,
        }
        # Entries survive a counter reset — only the stats are zeroed.
        assert get_unit(cache, "ab" * 32, 1) is not None
        assert cache.stats()["hit_rate"] == 1.0

    def test_storage_stats_report_persistent_totals(self, cache):
        empty = cache.storage_stats()
        assert empty["backend"] == cache.backend.kind
        assert empty["entries"] == 0
        put_unit(cache, "ab" * 32, np.array([True]), np.array([0.5]))
        put_unit(cache, "cd" * 32, np.array([False]), np.array([1.0]))
        totals = cache.storage_stats()
        assert totals["entries"] == 2 and totals["bytes"] > 0
        # Unlike stats(), the totals survive a fresh handle on the same
        # root — they describe the store, not this process's lookups.
        fresh = ResultCache(cache.root)
        assert fresh.backend.kind == cache.backend.kind
        assert fresh.storage_stats()["entries"] == 2


class TestDeprecatedShims:
    """``get``/``put`` survive one release as warnings-wrapped shims
    over the record API (tier-1 runs under -W error::DeprecationWarning,
    so any internal caller left behind fails loudly)."""

    def test_put_shim_round_trips(self, cache):
        solved = np.array([True, False])
        failure = np.array([0.25, 1.0])
        with pytest.deprecated_call(match="put_record"):
            cache.put("ab" * 32, solved, failure, method_name="heur-l",
                      info={"probes": 3})
        record = cache.get_record("ab" * 32, n_points=2)
        assert record["method"] == "heur-l" and record["info"] == {"probes": 3}

    def test_get_shim_round_trips(self, cache):
        put_unit(cache, "ab" * 32, np.array([True]), np.array([0.5]),
                 objective_values=np.array([float("inf")]))
        with pytest.deprecated_call(match="get_record"):
            got = cache.get("ab" * 32, 1)
        assert got[0][0] and got[2][0] == float("inf")
        with pytest.deprecated_call(match="get_record"):
            assert cache.get("cd" * 32, 1) is None

    def test_shims_write_identical_bytes(self, cache):
        """A shim put and a record put produce the same entry text."""
        solved, failure = np.array([True]), np.array([0.125])
        with pytest.deprecated_call():
            cache.put("ab" * 32, solved, failure, method_name="m")
        cache.put_record(
            "cd" * 32, unit_record(solved, failure, method_name="m")
        )
        texts = {key: text for key, text in cache.backend.scan()}
        assert texts["ab" * 32] == texts["cd" * 32]


class TestKeyStability:
    def test_stable_across_process_restarts(self, instance):
        """Content hashes must not depend on per-process hash salting."""
        chain, platform = instance
        cache = ResultCache(".")
        here = cache.unit_key("heur-l", problems(chain, platform))
        script = (
            "from repro.experiments import homogeneous_suite\n"
            "from repro.experiments.cache import ResultCache\n"
            "from repro.solve import Problem\n"
            "chain, platform = homogeneous_suite(n_instances=1, seed=8)[0]\n"
            f"units = [Problem(chain, platform, P, L) for P, L in {BOUNDS!r}]\n"
            "print(ResultCache('.').unit_key('heur-l', units))\n"
        )
        import repro

        env = dict(os.environ)
        pkg_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
        there = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
        ).stdout.strip()
        assert here == there

    def test_keys_are_backend_independent(self, instance, tmp_path):
        chain, platform = instance
        keys = {
            ResultCache(tmp_path / kind, backend=kind).unit_key(
                "heur-l", problems(chain, platform)
            )
            for kind in BACKENDS
        }
        assert len(keys) == 1

    def test_invalidation_on_ingredient_change(self, instance):
        chain, platform = instance
        cache = ResultCache(".")
        base = cache.unit_key("heur-l", problems(chain, platform))
        other_chain = TaskChain(chain.work * 2.0, chain.output)
        other_platform = Platform(
            speeds=platform.speeds * 2.0,
            failure_rates=platform.failure_rates,
            bandwidth=platform.bandwidth,
            link_failure_rate=platform.link_failure_rate,
            max_replication=platform.max_replication,
        )
        variants = {
            "method": cache.unit_key("heur-p", problems(chain, platform)),
            "chain": cache.unit_key("heur-l", problems(other_chain, platform)),
            "platform": cache.unit_key("heur-l", problems(chain, other_platform)),
            "bounds": cache.unit_key("heur-l", problems(chain, platform, BOUNDS[:1])),
            "seed": cache.unit_key("heur-l", problems(chain, platform), seed=7),
        }
        for what, key in variants.items():
            assert key != base, f"changing the {what} must change the key"
        assert len(set(variants.values())) == len(variants)

    def test_empty_unit_rejected(self, instance):
        with pytest.raises(ValueError, match="at least one Problem"):
            ResultCache(".").unit_key("heur-l", [])

    def test_content_hash_model_objects(self, instance):
        chain, platform = instance
        assert content_hash(chain) == content_hash(chain)
        assert content_hash(chain) != content_hash(platform)


class TestCorruptionRecovery:
    def _one_entry(self, cache):
        chain, platform = homogeneous_suite(n_instances=1, seed=8)[0]
        key = cache.unit_key("x", problems(chain, platform))
        put_unit(cache, key, np.array([True, True]), np.array([0.5, 0.5]))
        return key

    @pytest.mark.parametrize(
        "garbage",
        [
            "not json at all {",
            json.dumps({"repro_cache": 999, "solved": [True], "failure": [0.5]}),
            json.dumps({"repro_cache": 1, "solved": [True, True], "failure": [0.5, 0.5]}),  # stale format
            json.dumps({"repro_cache": CACHE_FORMAT, "solved": [True], "failure": [0.5]}),  # wrong len
            json.dumps({"repro_cache": CACHE_FORMAT}),  # missing arrays
            json.dumps([1, 2, 3]),  # wrong top-level type
        ],
    )
    def test_corrupt_entry_is_dropped_and_recomputed(self, cache, garbage):
        key = self._one_entry(cache)
        plant_entry(cache, key, garbage)
        assert cache.get_record(key, n_points=2) is None  # treated as a miss ...
        assert entry_text(cache, key) is None  # ... and discarded
        assert cache.misses == 1 and cache.corrupt == 1  # ... and counted
        put_unit(cache, key, np.array([True, False]), np.array([0.25, 1.0]))
        got = get_unit(cache, key, 2)  # recovery: rewritten entry reads back
        assert got is not None and got[0][0] and not got[0][1]
        assert cache.corrupt == 1  # the healthy re-read adds nothing

    def test_truncated_entry_counts_as_corrupt_not_plain_miss(self, cache):
        """Regression: a damaged entry used to be indistinguishable from
        an absent one — both only bumped ``misses``."""
        key = self._one_entry(cache)
        plant_entry(cache, key, entry_text(cache, key)[:12])  # interrupted write
        assert cache.get_record(key, n_points=2) is None
        assert cache.stats() == {
            "hits": 0, "misses": 1, "puts": 1, "corrupt": 1, "hit_rate": 0.0,
        }
        # A lookup of a key that was never written stays corrupt-free.
        assert cache.get_record("ef" * 32, n_points=2) is None
        assert cache.stats() == {
            "hits": 0, "misses": 2, "puts": 1, "corrupt": 1, "hit_rate": 0.0,
        }

    def test_corrupt_record_lookup_counts_too(self, cache):
        cache.put_record("12" * 32, {"kind": "grid-probe", "period": 4.0})
        plant_entry(cache, "12" * 32, "{oops")
        assert cache.get_record("12" * 32) is None
        assert cache.corrupt == 1 and cache.misses == 1

    def test_corrupt_entry_heals_through_run_sweep(self, cache, instance):
        methods = [get_method("heur-l")]
        first = run_sweep([instance], methods, BOUNDS, cache=cache)
        (key,) = entry_keys(cache)
        plant_entry(cache, key, "truncated garbag")
        again = run_sweep([instance], methods, BOUNDS, cache=cache)
        assert np.array_equal(first.failure, again.failure)
        assert json.loads(entry_text(cache, key))["repro_cache"] == CACHE_FORMAT
        assert cache.stats()["corrupt"] == 1


class TestWarmRunDoesNoWork:
    def test_second_cached_run_performs_zero_solves(self, cache):
        """The acceptance criterion: a warm cache means zero method
        solves — verified with a hit-counting registered method."""
        from repro.experiments import METHODS, register_method

        solve_calls = {"n": 0}

        def counting_solve(problem):
            solve_calls["n"] += 1
            return get_method("heur-l").solve_problem(problem)

        counted = register_method("counted-heur-l")(counting_solve)
        try:
            suite = homogeneous_suite(n_instances=3, seed=21)
            first = run_sweep(suite, [counted], BOUNDS, cache=cache)
            n_units = len(suite)
            assert solve_calls["n"] == n_units * len(BOUNDS)
            assert cache.stats() == {
                "hits": 0, "misses": n_units, "puts": n_units, "corrupt": 0,
                "hit_rate": 0.0,
            }

            second = run_sweep(suite, [counted], BOUNDS, cache=cache)
            assert solve_calls["n"] == n_units * len(BOUNDS)  # zero new solves
            assert cache.hits == n_units
            assert np.array_equal(first.solved, second.solved)
            assert np.array_equal(first.failure, second.failure)
        finally:
            METHODS.pop("counted-heur-l", None)

    def test_ad_hoc_methods_are_never_cached(self, cache):
        """A bare name cannot fingerprint a local callable, so methods
        outside the registry bypass the cache entirely."""
        local = Method(
            name="heur-l",  # same name as a builtin, different object
            solve=lambda problem: get_method("heur-l").solve_problem(problem),
            exact=False, homogeneous_only=False,
        )
        suite = homogeneous_suite(n_instances=2, seed=21)
        run_sweep(suite, [local], BOUNDS, cache=cache)
        assert cache.stats() == {
            "hits": 0, "misses": 0, "puts": 0, "corrupt": 0, "hit_rate": None,
        }

    def test_infinite_bounds_are_cacheable(self, cache):
        """Unbounded sweeps (P or L = inf) must work with the cache on."""
        suite = homogeneous_suite(n_instances=1, seed=21)
        inf_bounds = [(float("inf"), 750.0), (250.0, float("inf"))]
        first = run_sweep(suite, [get_method("heur-l")], inf_bounds, cache=cache)
        second = run_sweep(suite, [get_method("heur-l")], inf_bounds, cache=cache)
        assert cache.hits == 1 and cache.puts == 1
        assert np.array_equal(first.failure, second.failure)


class TestResolveCache:
    def test_none_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache(None) is None

    def test_env_fallback(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store = resolve_cache(None)
        assert isinstance(store, ResultCache) and store.root == tmp_path

    def test_passthrough_and_path(self, cache, tmp_path):
        assert resolve_cache(cache) is cache
        assert resolve_cache(tmp_path).root == tmp_path


class TestLegacyPathRemoved:
    """The one-release format-3 read path is gone: pre-columnar entries
    simply miss (and sit inert on disk under keys that never match)."""

    def test_legacy_symbols_are_gone(self):
        import repro.experiments.cache as cache_mod

        assert not hasattr(cache_mod, "LEGACY_CACHE_FORMAT")
        assert not hasattr(cache_mod, "get_legacy_unit")
        assert not hasattr(ResultCache, "get_legacy_unit")

    def test_format3_entry_misses_and_recomputes(self, cache, instance):
        chain, platform = instance
        key = cache.unit_key("heur-l", problems(chain, platform))
        # Plant a format-3-shaped payload under the format-4 key: the
        # stale stamp must read as corrupt, not silently replay.
        plant_entry(cache, key, json.dumps({
            "repro_cache": 3, "method": "heur-l",
            "n_points": 2, "solved": [True, False], "failure": [0.125, 1.0],
        }))
        assert cache.get_record(key, n_points=2) is None
        assert cache.stats() == {
            "hits": 0, "misses": 1, "puts": 0, "corrupt": 1, "hit_rate": 0.0,
        }
