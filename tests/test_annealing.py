"""Tests for the simulated-annealing mapper extension."""

import math

import numpy as np
import pytest

from repro.algorithms import heuristic_best, pareto_dp_best
from repro.core import Interval, Mapping, Platform, TaskChain, random_chain, random_platform
from repro.extensions import anneal_mapping
from repro.extensions.annealing import AnnealingStats, _score
from repro.core.evaluation import evaluate_mapping


def hom_platform(p, K):
    return Platform.homogeneous_platform(
        p, failure_rate=1e-6, link_failure_rate=1e-5, max_replication=K
    )


class TestScore:
    def test_feasible_score_monotone_in_reliability(self):
        chain = TaskChain([4.0], [0.0])
        plat = hom_platform(3, 2)
        single = evaluate_mapping(Mapping(chain, plat, [(Interval(0, 1), (0,))]))
        double = evaluate_mapping(Mapping(chain, plat, [(Interval(0, 1), (0, 1))]))
        assert _score(double, math.inf, math.inf) > _score(single, math.inf, math.inf)

    def test_violation_penalized(self):
        chain = TaskChain([4.0], [0.0])
        plat = hom_platform(1, 1)
        ev = evaluate_mapping(Mapping(chain, plat, [(Interval(0, 1), (0,))]))
        ok = _score(ev, max_period=10.0, max_latency=10.0)
        bad = _score(ev, max_period=1.0, max_latency=10.0)
        assert bad < ok - 10.0


class TestAnnealMapping:
    def test_respects_bounds(self):
        chain = random_chain(8, rng=1)
        plat = hom_platform(6, 3)
        res = anneal_mapping(
            chain, plat, max_period=200.0, max_latency=700.0,
            iterations=600, rng=2,
        )
        if res.feasible:
            assert res.evaluation.worst_case_period <= 200.0 + 1e-9
            assert res.evaluation.worst_case_latency <= 700.0 + 1e-9

    def test_never_worse_than_heuristic_warm_start(self):
        chain = random_chain(8, rng=3)
        plat = hom_platform(6, 3)
        P, L = 250.0, 800.0
        heur = heuristic_best(chain, plat, max_period=P, max_latency=L)
        res = anneal_mapping(
            chain, plat, max_period=P, max_latency=L, iterations=500, rng=4
        )
        if heur.feasible:
            assert res.feasible
            assert res.log_reliability >= heur.log_reliability - 1e-12

    def test_never_beats_exact_optimum(self):
        chain = random_chain(6, rng=5)
        plat = hom_platform(5, 2)
        P, L = 200.0, 700.0
        exact = pareto_dp_best(chain, plat, max_period=P, max_latency=L)
        res = anneal_mapping(
            chain, plat, max_period=P, max_latency=L, iterations=1500, rng=6
        )
        if res.feasible:
            assert exact.feasible
            assert res.log_reliability <= exact.log_reliability + 1e-12

    def test_recovers_from_bad_initial_state(self):
        """Warm-started from a poor mapping, annealing must find the
        replicated optimum of a trivial instance."""
        chain = TaskChain([10.0], [0.0])
        plat = hom_platform(3, 3)
        bad = Mapping(chain, plat, [(Interval(0, 1), (0,))])
        res = anneal_mapping(chain, plat, iterations=800, rng=7, initial=bad)
        assert res.feasible
        assert res.mapping.processors_used == 3  # replicated up to K

    def test_heterogeneous_platform(self):
        rng = np.random.default_rng(11)
        chain = random_chain(8, rng)
        plat = random_platform(8, rng)
        res = anneal_mapping(
            chain, plat, max_period=60.0, max_latency=250.0,
            iterations=800, rng=12,
        )
        heur = heuristic_best(chain, plat, max_period=60.0, max_latency=250.0)
        if heur.feasible:
            assert res.feasible
            assert res.log_reliability >= heur.log_reliability - 1e-12

    def test_deterministic_given_seed(self):
        chain = random_chain(6, rng=8)
        plat = hom_platform(5, 2)
        a = anneal_mapping(chain, plat, iterations=300, rng=9)
        b = anneal_mapping(chain, plat, iterations=300, rng=9)
        assert a.feasible == b.feasible
        if a.feasible:
            assert a.mapping == b.mapping

    def test_stats_populated(self):
        chain = random_chain(5, rng=10)
        plat = hom_platform(4, 2)
        res = anneal_mapping(chain, plat, iterations=200, rng=13)
        stats = res.details["stats"]
        assert isinstance(stats, AnnealingStats)
        assert stats.iterations == 200
        assert 0 <= stats.accepted <= 200

    def test_infeasible_instance(self):
        chain = TaskChain([100.0], [0.0])
        plat = hom_platform(2, 2)
        res = anneal_mapping(chain, plat, max_period=1.0, iterations=100, rng=14)
        assert not res.feasible

    def test_validation(self):
        chain = TaskChain([1.0], [0.0])
        plat = hom_platform(1, 1)
        with pytest.raises(ValueError):
            anneal_mapping(chain, plat, iterations=0)
        with pytest.raises(ValueError):
            anneal_mapping(chain, plat, cooling=0.0)
