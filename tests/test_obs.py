"""The observability layer: telemetry spans/counters and the run ledger
(deterministic artifact writer, list/show/diff inspector)."""

import json
import pickle

import pytest

from repro.cli import main
from repro.obs import (
    Telemetry,
    diff_runs,
    find_run,
    list_runs,
    load_run,
    render_diff,
    render_report,
    resolve_runs_dir,
    run_id_for,
    write_run,
)
from repro.obs import ledger as ledger_mod
from repro.obs import telemetry as obs


class TestTelemetry:
    def test_disabled_is_a_shared_noop(self):
        assert obs.active() is None
        # No collector installed: the same no-op span object every time,
        # and counters vanish without a trace.
        assert obs.span("x") is obs.span("y", label="z")
        with obs.span("x"):
            obs.counter("x.events", 3)
        assert obs.active() is None

    def test_collect_aggregates_and_restores(self):
        with obs.collect() as tele:
            with obs.span("phase", label="a"):
                pass
            with obs.span("phase", label="a"):
                pass
            obs.counter("widgets")
            obs.counter("widgets", 2)
            assert obs.active() is tele
        assert obs.active() is None
        assert tele.spans["phase[a]"]["count"] == 2
        assert tele.spans["phase[a]"]["seconds"] >= 0.0
        assert tele.counters["widgets"] == 3

    def test_collect_nests(self):
        with obs.collect() as outer:
            obs.counter("depth")
            with obs.collect() as inner:
                obs.counter("depth")
            assert obs.active() is outer
        assert outer.counters == {"depth": 1}
        assert inner.counters == {"depth": 1}

    def test_snapshot_merges_and_pickles(self):
        worker = Telemetry()
        worker.counter("cache.hit", 4, label="heur-l")
        with worker.span("sweep.unit", "heur-l"):
            pass
        snapshot = pickle.loads(pickle.dumps(worker.snapshot()))

        parent = Telemetry()
        parent.counter("cache.hit", 1, label="heur-l")
        parent.merge(snapshot)
        parent.merge(None)  # a worker that collected nothing
        assert parent.counters["cache.hit[heur-l]"] == 5
        assert parent.spans["sweep.unit[heur-l]"]["count"] == 1


def _manifest(objective_p50: float, sweep_seconds: float) -> dict:
    return {
        "command": "scenario-run",
        "scenario": {"name": "synthetic", "spec_hash": "ab" * 32},
        "objective": "reliability",
        "n_instances": 2,
        "batch_units": 2,
        "seconds": {"generate": 0.001, "sweep": sweep_seconds, "total": 0.5},
        "cache": {"hits": 0, "misses": 4, "puts": 4, "corrupt": 0, "hit_rate": 0.0},
        "series": {
            "heur-l": {
                "counts": [1, 2],
                "avg_failure": [0.5, 0.25],
                "objective_quantiles": {"p50": [0.5, objective_p50]},
            }
        },
    }


UNITS = [
    {"method": "heur-l", "instance": 0, "source": "batch", "solved": 2,
     "seconds": 0.01, "batch_group": 2},
    {"method": "heur-l", "instance": 1, "source": "worker", "solved": 1,
     "seconds": 0.02, "converged": False, "probes": 9},
]


class TestLedgerWriter:
    def test_run_id_is_deterministic_and_content_addressed(self):
        identity = {"command": "scenario-run", "seed": 0}
        a = run_id_for(identity, "20260808T120000Z")
        assert a == run_id_for({"seed": 0, "command": "scenario-run"}, "20260808T120000Z")
        assert a.startswith("20260808T120000Z-")
        assert a != run_id_for(identity, "20260808T120001Z")
        assert a != run_id_for({"command": "scenario-run", "seed": 1}, "20260808T120000Z")
        with pytest.raises(ValueError):
            run_id_for(identity, "")

    def test_identical_inputs_produce_byte_identical_artifacts(self, tmp_path):
        """The determinism contract: same manifest + units + run_id in,
        same bytes out — across separate write_run calls."""
        run_id = run_id_for({"x": 1}, "20260808T120000Z")
        path_a = write_run(tmp_path / "a", run_id, _manifest(0.25, 0.1), UNITS)
        path_b = write_run(tmp_path / "b", run_id, _manifest(0.25, 0.1), UNITS)
        for name in ("manifest.json", "per_unit.jsonl", "report.md"):
            assert (path_a / name).read_bytes() == (path_b / name).read_bytes(), name
        # And a changed input changes the manifest bytes.
        path_c = write_run(tmp_path / "c", run_id, _manifest(0.5, 0.1), UNITS)
        assert (path_a / "manifest.json").read_bytes() != (path_c / "manifest.json").read_bytes()

    def test_interrupted_write_leaves_no_half_run(self, tmp_path, monkeypatch):
        """manifest.json lands last; a crash before it leaves a directory
        that list/find skip — and no stray temp files."""
        real = ledger_mod.write_atomic

        def failing(path, text):
            if path.name == "manifest.json":
                raise OSError("disk full")
            real(path, text)

        monkeypatch.setattr(ledger_mod, "write_atomic", failing)
        run_id = run_id_for({"x": 1}, "20260808T120000Z")
        with pytest.raises(OSError):
            write_run(tmp_path, run_id, _manifest(0.25, 0.1), UNITS)
        assert (tmp_path / run_id / "per_unit.jsonl").is_file()
        assert not (tmp_path / run_id / "manifest.json").exists()
        assert list_runs(tmp_path) == []
        with pytest.raises(FileNotFoundError):
            find_run(run_id, tmp_path)
        # The interrupted run completes on retry and surfaces normally.
        monkeypatch.setattr(ledger_mod, "write_atomic", real)
        write_run(tmp_path, run_id, _manifest(0.25, 0.1), UNITS)
        assert [row["run_id"] for row in list_runs(tmp_path)] == [run_id]

    def test_atomic_write_never_exposes_partial_content(self, tmp_path, monkeypatch):
        """A crash mid-write must leave the old content intact (temp file
        + rename), not a truncated file."""
        target = tmp_path / "manifest.json"
        ledger_mod.write_atomic(target, "old content")

        def exploding_fdopen(fd, mode):
            import os

            os.close(fd)
            raise OSError("interrupted")

        monkeypatch.setattr(ledger_mod.os, "fdopen", exploding_fdopen)
        with pytest.raises(OSError):
            ledger_mod.write_atomic(target, "new content")
        assert target.read_text() == "old content"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_find_run_prefix_matching(self, tmp_path):
        id_a = run_id_for({"x": 1}, "20260808T120000Z")
        id_b = run_id_for({"x": 2}, "20260809T120000Z")
        write_run(tmp_path, id_a, _manifest(0.25, 0.1))
        write_run(tmp_path, id_b, _manifest(0.25, 0.1))
        assert find_run(id_a, tmp_path) == id_a
        assert find_run("20260809", tmp_path) == id_b
        with pytest.raises(ValueError, match="ambiguous"):
            find_run("2026", tmp_path)
        with pytest.raises(FileNotFoundError):
            find_run("2027", tmp_path)

    def test_report_renders_attribution_and_convergence(self, tmp_path):
        run_id = run_id_for({"x": 1}, "20260808T120000Z")
        path = write_run(tmp_path, run_id, _manifest(0.25, 0.1), UNITS)
        report = (path / "report.md").read_text()
        assert run_id in report
        assert "- batch: 1 units" in report
        assert "- worker: 1 units" in report
        assert "0 converged, 1 budget-exhausted" in report
        # render_report is a pure function of its inputs.
        loaded = load_run(run_id, tmp_path)
        assert render_report(loaded.manifest, loaded.units) == report

    def test_resolve_runs_dir_env_fallback(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "elsewhere"))
        assert resolve_runs_dir(None) == tmp_path / "elsewhere"
        assert resolve_runs_dir(tmp_path) == tmp_path
        monkeypatch.delenv("REPRO_RUNS_DIR")
        assert str(resolve_runs_dir(None)) == "runs"


class TestDiff:
    def _two_runs(self, tmp_path):
        id_a = run_id_for({"leg": "cold"}, "20260808T120000Z")
        id_b = run_id_for({"leg": "warm"}, "20260808T120100Z")
        write_run(tmp_path, id_a, _manifest(0.25, 0.4), UNITS)
        warm_units = [dict(u, source="cache", seconds=None) for u in UNITS]
        write_run(tmp_path, id_b, _manifest(0.75, 0.1), warm_units)
        return load_run(id_a, tmp_path), load_run(id_b, tmp_path)

    def test_diff_reports_objective_timing_cache_batch_deltas(self, tmp_path):
        a, b = self._two_runs(tmp_path)
        diff = diff_runs(a, b)
        method = diff["series"]["methods"]["heur-l"]
        assert method["objective_p50"]["delta"] == pytest.approx(0.5)
        assert method["count"]["delta"] == 0
        assert diff["seconds"]["sweep"]["delta"] == pytest.approx(-0.3)
        assert diff["cache"]["hits"]["delta"] == 0
        assert diff["batch"]["sources"]["cache"] == {"a": 0, "b": 2, "delta": 2}
        assert diff["batch"]["sources"]["batch"] == {"a": 1, "b": 0, "delta": -1}
        text = render_diff(diff)
        assert "objective (final sweep point" in text
        assert "units[cache]" in text and "+2" in text

    def test_diff_handles_disjoint_methods(self, tmp_path):
        a, b = self._two_runs(tmp_path)
        manifest = dict(b.manifest)
        manifest["series"] = {"heur-p": manifest["series"]["heur-l"]}
        other = ledger_mod.RunRecord(
            run_id=b.run_id, path=b.path, manifest=manifest,
            units=b.units, report=b.report,
        )
        diff = diff_runs(a, other)
        assert diff["series"]["only_a"] == ["heur-l"]
        assert diff["series"]["only_b"] == ["heur-p"]
        assert diff["series"]["methods"] == {}


class TestRunsCLI:
    def _seed_ledger(self, runs_dir):
        id_a = run_id_for({"leg": "cold"}, "20260808T120000Z")
        id_b = run_id_for({"leg": "warm"}, "20260808T120100Z")
        write_run(runs_dir, id_a, _manifest(0.25, 0.4), UNITS)
        write_run(runs_dir, id_b, _manifest(0.75, 0.1),
                  [dict(u, source="cache", seconds=None) for u in UNITS])
        return id_a, id_b

    def test_runs_list_show_diff(self, tmp_path, capsys):
        runs_dir = tmp_path / "ledger"
        id_a, id_b = self._seed_ledger(runs_dir)

        assert main(["runs", "list", "--runs-dir", str(runs_dir)]) == 0
        out = capsys.readouterr().out
        assert id_a in out and id_b in out and "scenario-run" in out

        assert main(["runs", "show", id_a[:17], "--runs-dir", str(runs_dir)]) == 0
        assert f"# repro run `{id_a}`" in capsys.readouterr().out

        assert main(["runs", "show", id_a, "--json",
                     "--runs-dir", str(runs_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["run_id"] == id_a

        assert main(["runs", "diff", id_a, id_b,
                     "--runs-dir", str(runs_dir)]) == 0
        out = capsys.readouterr().out
        assert f"diff {id_a} -> {id_b}" in out and "units[cache]" in out

    def test_runs_list_empty(self, tmp_path, capsys):
        assert main(["runs", "list", "--runs-dir", str(tmp_path / "none")]) == 0
        assert "no runs under" in capsys.readouterr().out

    def test_runs_show_unknown_and_ambiguous(self, tmp_path):
        runs_dir = tmp_path / "ledger"
        self._seed_ledger(runs_dir)
        with pytest.raises(SystemExit, match="no run"):
            main(["runs", "show", "zzz", "--runs-dir", str(runs_dir)])
        with pytest.raises(SystemExit, match="ambiguous"):
            main(["runs", "diff", "2026", "2026", "--runs-dir", str(runs_dir)])


class TestEndToEndLedger:
    def test_scenario_run_writes_a_complete_ledger_run(self, tmp_path, capsys):
        """Acceptance: every scenario run produces runs/<run_id>/ with a
        manifest, per-unit attribution, and a report."""
        runs_dir = tmp_path / "runs"
        assert main([
            "scenario", "run", "section8-hom", "--n-instances", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--runs-dir", str(runs_dir),
            "--timestamp", "20260808T130000Z",
            "--manifest", str(tmp_path / "m.json"),
        ]) == 0
        out = capsys.readouterr().out
        (row,) = list_runs(runs_dir)
        assert row["run_id"] in out
        record = load_run(row["run_id"], runs_dir)
        manifest = record.manifest
        assert manifest["command"] == "scenario-run"
        assert manifest["timestamp"] == "20260808T130000Z"
        assert set(manifest["seconds"]) >= {"generate", "grid", "sweep", "total"}
        assert any(key.startswith("solve[") for key in manifest["seconds"])
        assert manifest["cache"]["hit_rate"] == 0.0
        assert manifest["telemetry"]["counters"]
        assert {"cache_lookup", "total"} <= set(manifest["timings"])
        # One per-unit line per (method, instance) work unit, sorted by
        # plan order then instance, each attributed to a source.
        selected = manifest["plan"]["selected"]
        assert [u["method"] for u in record.units] == [
            m for m in selected for _ in range(2)
        ]
        assert all(u["source"] in {"batch", "parent", "worker", "cache"}
                   for u in record.units)
        # The legacy manifest carries the same run_id.
        legacy = json.loads((tmp_path / "m.json").read_text())
        assert legacy["run_id"] == row["run_id"]

    def test_warm_rerun_diffs_cleanly(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        argv = [
            "scenario", "run", "section8-hom", "--n-instances", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--runs-dir", str(runs_dir),
            "--manifest", str(tmp_path / "m.json"),
        ]
        assert main(argv + ["--timestamp", "20260808T130000Z"]) == 0
        assert main(argv + ["--timestamp", "20260808T130100Z"]) == 0
        capsys.readouterr()
        rows = list_runs(runs_dir)
        assert len(rows) == 2
        a, b = (load_run(r["run_id"], runs_dir) for r in rows)
        diff = diff_runs(a, b)
        # Same workload, warm cache: objectives identical, everything
        # served from cache on the second leg.
        for record in diff["series"]["methods"].values():
            assert record["count"]["delta"] == 0
            assert record["objective_p50"]["delta"] in (0, None)
        assert diff["cache"]["hits"]["b"] > 0
        assert diff["cache"]["misses"]["b"] == 0
        assert diff["batch"]["sources"]["cache"]["b"] == len(b.units)
